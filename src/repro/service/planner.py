"""The planner service: cache-first request orchestration.

Request lifecycle::

    plan(request)
      └─ key = fingerprints(graph × mesh × config)      (graph memoised)
         ├─ cache.get(key)       → memory / disk hit    (micro/milliseconds)
         └─ miss:
             ├─ another thread already searching key?   → coalesce: wait on it
             ├─ too many distinct keys in flight?       → ServiceOverloadedError
             └─ otherwise own the search                → worker fleet (or inline)
                  └─ cache.put(key, envelope)           → wake all waiters

Coalescing guarantees N concurrent requests for one key run exactly one
search — the owner publishes its envelope through the in-flight record
and every waiter reuses it.  Admission control bounds the *distinct*
keys in flight (waiters ride for free: they consume a thread, not a
search slot), so an overloaded service fails fast with a retryable
error instead of building an unbounded queue.

Everything is observable: per-request spans (``service.request``),
hit/miss/coalesce/overload counters and a queue-depth gauge flow
through :mod:`repro.obs`, and the service keeps its own latency
reservoir for p50/p99 in ``stats()`` even when tracing is disabled.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from .. import obs
from ..core import CacheEnvelope, NodeGraph, RoutedPlan, graph_fingerprint
from .cache import PlanCache
from .requests import PlanRequest, build_request_graph, request_key
from .workers import WorkerFleet, execute_request

__all__ = [
    "PlanResponse",
    "PlannerService",
    "ServiceError",
    "ServiceOverloadedError",
]


class ServiceError(RuntimeError):
    """A request the planner service could not satisfy."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected the request; safe to retry later."""

    def __init__(self, inflight: int, limit: int) -> None:
        super().__init__(
            f"planner service overloaded: {inflight} searches in flight "
            f"(limit {limit}); retry later"
        )
        self.inflight = inflight
        self.limit = limit


@dataclass
class PlanResponse:
    """What ``plan()`` hands back, whatever path the request took."""

    key: str
    source: str  # "memory" | "disk" | "search" | "coalesced"
    envelope: CacheEnvelope
    latency_seconds: float
    label: str

    @property
    def routed(self) -> RoutedPlan:
        return self.envelope.routed

    @property
    def cost(self) -> float:
        return self.envelope.cost

    @property
    def cached(self) -> bool:
        return self.source in ("memory", "disk")


class _Inflight:
    """One in-progress search; waiters block on the event."""

    __slots__ = ("event", "envelope", "error", "waiters")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.envelope: Optional[CacheEnvelope] = None
        self.error: Optional[BaseException] = None
        self.waiters = 0


def _quantile(sample: List[float], q: float) -> float:
    """Nearest-rank quantile; 0.0 on an empty sample."""
    if not sample:
        return 0.0
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class PlannerService:
    """Long-lived planner answering requests cache-first.

    ``workers=None`` executes misses inline on the calling thread (no
    subprocesses — the embedded/test mode); ``workers=N`` runs them on a
    fleet of N processes; ``workers=0`` auto-sizes the fleet to the
    machine.  ``preload=True`` warm-restarts the LRU from whatever the
    disk store already holds.
    """

    def __init__(
        self,
        cache_dir=None,
        *,
        workers: Optional[int] = None,
        lru_capacity: int = 128,
        queue_limit: int = 32,
        verify_loads: bool = True,
        preload: bool = False,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.cache = PlanCache(
            cache_dir, capacity=lru_capacity, verify_loads=verify_loads
        )
        self._fleet = WorkerFleet(workers) if workers is not None else None
        self._queue_limit = queue_limit
        self._inflight: Dict[str, _Inflight] = {}
        self._lock = threading.Lock()
        self._graphs: Dict[str, Tuple[NodeGraph, str]] = {}
        self._graphs_lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=4096)
        self._counters: Dict[str, int] = {
            "requests": 0,
            "searches": 0,
            "coalesced": 0,
            "overloaded": 0,
            "errors": 0,
        }
        self._closed = False
        self._preloaded = self.cache.preload() if preload else 0

    # -- identity ----------------------------------------------------------

    def _request_identity(self, request: PlanRequest) -> Tuple[NodeGraph, str]:
        """Per-preset memo of (graph, graph digest) + the request's key.

        Building and hashing the graph dominates key cost (milliseconds
        for big presets); both are pure functions of the preset name, so
        a warm hit pays only the two small mesh/config hashes.
        """
        with self._graphs_lock:
            hit = self._graphs.get(request.model)
        if hit is None:
            node_graph = build_request_graph(request)
            hit = (node_graph, graph_fingerprint(node_graph))
            with self._graphs_lock:
                hit = self._graphs.setdefault(request.model, hit)
        node_graph, graph_fp = hit
        key, _ = request_key(request, graph_fp=graph_fp)
        return node_graph, key

    def request_key(self, request: PlanRequest) -> str:
        return self._request_identity(request)[1]

    # -- the request path --------------------------------------------------

    def plan(
        self, request: PlanRequest, timeout: Optional[float] = None
    ) -> PlanResponse:
        if self._closed:
            raise ServiceError("planner service is closed")
        start = time.perf_counter()
        node_graph, key = self._request_identity(request)
        with self._lock:
            self._counters["requests"] += 1
        with obs.trace.span("service.request", key=key, model=request.model):
            env, tier = self.cache.get(key, node_graph)
            if env is not None:
                obs.metrics.counter(f"service.hit_{tier}")
                return self._respond(key, tier, env, request, start)
            source, env = self._search_or_wait(key, request, timeout)
            return self._respond(key, source, env, request, start)

    def _search_or_wait(
        self, key: str, request: PlanRequest, timeout: Optional[float]
    ) -> Tuple[str, CacheEnvelope]:
        with self._lock:
            inflight = self._inflight.get(key)
            owner = inflight is None
            if owner:
                if len(self._inflight) >= self._queue_limit:
                    self._counters["overloaded"] += 1
                    obs.metrics.counter("service.overloaded")
                    raise ServiceOverloadedError(
                        len(self._inflight), self._queue_limit
                    )
                inflight = _Inflight()
                self._inflight[key] = inflight
            else:
                inflight.waiters += 1
                self._counters["coalesced"] += 1
                obs.metrics.counter("service.coalesced")
            obs.metrics.gauge("service.queue_depth", len(self._inflight))
        if owner:
            self._run_search(key, request, inflight)
        elif not inflight.event.wait(timeout):
            raise TimeoutError(
                f"timed out after {timeout}s waiting on in-flight search {key}"
            )
        if inflight.error is not None:
            raise ServiceError(
                f"search for {key} failed: {inflight.error}"
            ) from inflight.error
        assert inflight.envelope is not None
        return ("search" if owner else "coalesced"), inflight.envelope

    def _run_search(
        self, key: str, request: PlanRequest, inflight: _Inflight
    ) -> None:
        doc = request.to_doc()
        doc["expected_key"] = key
        try:
            with obs.trace.span("service.search", key=key, model=request.model):
                if self._fleet is None:
                    result = execute_request(doc)
                else:
                    result = self._fleet.submit(doc).result()
            inflight.envelope = self.cache.put(key, result["envelope"])
            with self._lock:
                self._counters["searches"] += 1
            obs.metrics.counter("service.miss")
        except BaseException as exc:
            inflight.error = exc
            with self._lock:
                self._counters["errors"] += 1
            obs.metrics.counter("service.error")
            raise ServiceError(f"search for {key} failed: {exc}") from exc
        finally:
            with self._lock:
                self._inflight.pop(key, None)
                obs.metrics.gauge("service.queue_depth", len(self._inflight))
            inflight.event.set()

    def _respond(
        self,
        key: str,
        source: str,
        env: CacheEnvelope,
        request: PlanRequest,
        start: float,
    ) -> PlanResponse:
        latency = time.perf_counter() - start
        with self._lock:
            self._latencies.append(latency)
        obs.metrics.gauge("service.request_latency_s", latency, source=source)
        return PlanResponse(
            key=key,
            source=source,
            envelope=env,
            latency_seconds=latency,
            label=request.label(),
        )

    # -- lifecycle / introspection ----------------------------------------

    def stats(self) -> Dict:
        with self._lock:
            counters = dict(self._counters)
            sample = list(self._latencies)
            inflight = len(self._inflight)
        return {
            "counters": counters,
            "cache": self.cache.stats_dict(),
            "latency": {
                "count": len(sample),
                "p50_s": round(_quantile(sample, 0.50), 6),
                "p99_s": round(_quantile(sample, 0.99), 6),
            },
            "queue": {"inflight": inflight, "limit": self._queue_limit},
            "workers": self._fleet.workers if self._fleet is not None else 0,
            "preloaded": self._preloaded,
        }

    def close(self, wait: bool = True) -> None:
        """Graceful shutdown: stop the fleet; the disk cache persists."""
        self._closed = True
        if self._fleet is not None:
            self._fleet.shutdown(wait=wait)

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
