"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``plan``
    Derive a plan for a zoo preset on a mesh, print it (and the Fig. 14
    rendering), optionally save it as JSON.
``models``
    List the model zoo presets with their sizes.
``inspect``
    Show a model's graph statistics, GraphNode compression and the
    shared-subgraph families Algorithm 1 finds.
``simulate``
    Price a named plan (dp / mha_only / ffn_only / megatron / a saved
    JSON plan) on a mesh: step time, breakdown, per-device memory.
    ``--engine {reference,replay,columnar}`` picks the simulation tier
    (bit-identical results, different speed); ``--remote URL`` asks a
    running planner daemon's ``POST /simulate`` instead, which prices a
    whole candidate set in one cached columnar batch.
``verify``
    Static analysis: ``verify plan`` re-checks a derived or saved plan
    against the sharding invariants (divisibility, pattern chains,
    collective legality, packing) without simulating; ``verify lint``
    runs the AST rules guarding the memoization layers over the source
    tree.  Both exit non-zero on findings.
``bench``
    ``bench compare`` diffs the ``BENCH_*.json`` files of a benchmark
    run against recorded baselines and exits non-zero when a metric
    regressed past its threshold — the CI benchmark gate.
``serve``
    Run the planner daemon: answers plan requests over HTTP from a
    persistent fingerprinted cache, executing misses on a process-pool
    worker fleet.  ``plan --remote URL`` sends a request to it.
``cache``
    ``cache stats`` lists the daemon's disk-cached plans (key, engine
    tier, cost, search time); ``cache clear`` deletes them.

``plan`` and ``simulate`` run the plan verifier automatically (it is
rule-based and cheap); ``--no-verify`` is the escape hatch.  ``plan
--trace out.json`` additionally records the whole pipeline (prune,
enumerate, route, price, rewrite, simulate) as a Chrome trace merged
with the simulated iteration's timeline — open it in Perfetto.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .cluster import Mesh, paper_testbed
from .core import (
    CostConfig,
    CostModel,
    DEFAULT_REGISTRY,
    RoutingError,
    coarsen,
    derive_plan,
    load_plan,
    rewrite_graph,
    route_plan,
    save_plan,
)
from .graph import trim_auxiliary
from .models import MODEL_PRESETS, build_preset
from .baselines import NAMED_PLANS
from .simulator import memory_per_device, simulate_iteration
from .viz import format_table, render_plan

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_arg(text: str) -> int:
    """Worker counts: >= 1, or 0 meaning auto-detect ``os.cpu_count()``."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 1, or 0 for auto-detect, got {value}"
        )
    return value


def _parse_mesh_shape(text: str) -> tuple:
    try:
        nodes, gpus = (int(x) for x in text.lower().split("x"))
    except ValueError:
        raise SystemExit(f"mesh must look like '2x8', got {text!r}")
    return nodes, gpus


def _parse_mesh(text: str, fabric: str) -> Mesh:
    nodes, gpus = _parse_mesh_shape(text)
    if fabric == "paper":
        return paper_testbed(nodes, gpus)
    return Mesh(nodes, gpus)


def _prep(preset: str):
    """Build a preset and return ``(graph, trimmed, trim_record, ng)``."""
    graph = build_preset(preset)
    trimmed, record = trim_auxiliary(graph)
    return graph, trimmed, record, coarsen(trimmed)


def cmd_models(args) -> int:
    rows = []
    for name in sorted(MODEL_PRESETS):
        graph = build_preset(name)
        s = graph.stats()
        rows.append(
            [name, f"{s['parameters'] / 1e6:.0f}M", s["operators"], s["weights"]]
        )
    print(format_table(["preset", "params", "ops", "weights"], rows,
                       title="model zoo"))
    return 0


def cmd_inspect(args) -> int:
    from .core import prune_graph

    graph, _, _, ng = _prep(args.model)
    s = graph.stats()
    print(format_table(
        ["ops", "edges", "weights", "params", "GraphNodes"],
        [[s["operators"], s["edges"], s["weights"],
          f"{s['parameters'] / 1e6:.0f}M", len(ng)]],
        title=f"{args.model}",
    ))
    result = prune_graph(ng, min_duplicate=args.min_duplicate)
    print()
    print(result.describe())
    return 0


def _print_verification(report, label: str) -> None:
    if report.ok:
        print(f"verification ({label}): ok — "
              f"{report.rules_checked} rules, no errors")
    else:
        print(f"verification ({label}) FAILED:")
        print(report.describe())


def _run_remote_plan(args) -> int:
    import json

    from .core import envelope_from_json
    from .service import PlannerClient, PlanRequest, ServiceError

    nodes, gpus = _parse_mesh_shape(args.mesh)
    request = PlanRequest(
        model=args.model,
        mesh_nodes=nodes,
        mesh_gpus=gpus,
        fabric=args.fabric,
        batch_tokens=args.batch_tokens,
        min_duplicate=args.min_duplicate,
        engine="reference" if args.no_engine else args.engine,
        jobs=args.jobs,
        zero_stage=args.zero,
    )
    client = PlannerClient(args.remote)
    try:
        reply = client.plan(request)
    except ServiceError as exc:
        raise SystemExit(f"remote plan failed: {exc}")
    print(f"model: {args.model}   mesh: {args.mesh} ({args.fabric})   "
          f"remote: {client.base_url}")
    print(f"key: {reply['key']}")
    print(f"source: {reply['source']} "
          f"({'cache hit' if reply['cached'] else 'fresh search'})")
    timings = reply.get("timings") or {}
    if "search_seconds" in timings:
        print(f"search time (when derived): {timings['search_seconds']:.2f}s "
              f"[{reply.get('engine', '?')} tier]")
    print(f"cost: {reply['cost'] * 1e3:.2f} ms (communication objective)")
    print(f"round trip: {reply['latency_seconds'] * 1e3:.2f} ms service-side")
    if args.output:
        env = envelope_from_json(json.dumps(reply["envelope"]), verify=False)
        save_plan(env.routed.plan, args.output)
        print(f"plan saved to {args.output}")
    return 0


def cmd_plan(args) -> int:
    if args.remote:
        return _run_remote_plan(args)
    _, trimmed, trim_record, ng = _prep(args.model)
    mesh = _parse_mesh(args.mesh, args.fabric)
    cfg = CostConfig(batch_tokens=args.batch_tokens)
    chrome = None
    if args.trace:
        from . import obs

        chrome = obs.ChromeTraceSink()
        obs.enable(chrome, obs.MemorySink())
    try:
        return _run_plan(args, trimmed, trim_record, ng, mesh, cfg, chrome)
    finally:
        if chrome is not None:
            from . import obs

            obs.disable()


def _run_plan(args, trimmed, trim_record, ng, mesh, cfg, chrome) -> int:
    tier = "reference" if args.no_engine else args.engine
    result = derive_plan(
        ng, mesh,
        cost_config=cfg,
        min_duplicate=args.min_duplicate,
        engine=tier,
        jobs=args.jobs,
        zero_stage=args.zero,
    )
    print(f"model: {args.model}   mesh: {mesh}")
    if args.zero:
        print(f"zero stage: {args.zero} (reduce-scatter grad sync + "
              "post-step weight all-gather)")
    print(f"searched {result.candidates_examined} candidates "
          f"({result.valid_plans} valid) in {result.search_seconds:.2f}s")
    if tier != "reference":
        noun = "columns compiled" if tier == "columnar" else "node evaluations"
        print(f"{tier}: {result.evaluations} {noun}, "
              f"{result.cache_hits} cache hits, "
              f"{result.bound_skipped} candidates bound-skipped")
    print(f"best: {result.plan.describe()}")
    print(f"cost: {result.cost * 1e3:.2f} ms (communication objective)")
    print()
    print(render_plan(ng, result.plan, title="discovered plan"))
    if not args.no_verify:
        from .verify import verify_routed

        report = verify_routed(ng, result.routed, mesh, cfg)
        print()
        _print_verification(report, "routed plan")
        if not report.ok:
            return 1
    if args.output:
        save_plan(result.plan, args.output)
        print(f"\nplan saved to {args.output}")
    if chrome is not None:
        from . import obs

        # Run the back half of the pipeline too, so the trace shows every
        # stage: rewrite the winning plan and simulate one iteration, then
        # merge the planner spans (pid 1) with the simulated-device
        # timeline (pid 0) into one Perfetto-loadable file.
        rewrite_graph(
            trimmed, ng, result.routed,
            trim_record=trim_record, packing=cfg.packing,
        )
        prof = simulate_iteration(result.routed, mesh, cfg)
        events = obs.merged_chrome_trace(chrome, prof)
        obs.save_trace_events(events, args.trace)
        print(f"\ntrace written to {args.trace} ({len(events)} events) — "
              "open at https://ui.perfetto.dev")
    return 0


def _run_remote_simulate(args) -> int:
    from .service import PlannerClient, ServiceError, SimulateRequest

    nodes, gpus = _parse_mesh_shape(args.mesh)
    labels = tuple(p.strip() for p in args.plans.split(",") if p.strip()) \
        if args.plans else (args.plan,)
    try:
        request = SimulateRequest(
            model=args.model,
            mesh_nodes=nodes,
            mesh_gpus=gpus,
            fabric=args.fabric,
            batch_tokens=args.batch_tokens,
            plans=labels,
            tp_degree=args.tp,
            engine=args.engine or "columnar",
        )
    except ValueError as exc:
        raise SystemExit(f"bad simulate request: {exc}")
    client = PlannerClient(args.remote)
    try:
        reply = client.simulate(request)
    except ServiceError as exc:
        raise SystemExit(f"remote simulate failed: {exc}")
    print(f"model: {args.model}   mesh: {args.mesh} ({args.fabric})   "
          f"remote: {client.base_url}")
    print(f"key: {reply['key']}")
    print(f"source: {reply['source']} "
          f"({'cache hit' if reply['cached'] else 'fresh simulation'}) "
          f"[{reply.get('engine', '?')} tier]")
    rows = []
    for entry in reply["profiles"]:
        if not entry.get("valid", True):
            rows.append([entry["plan"], "-", "-", "-", "invalid"])
            continue
        prof = entry["profile"]
        rows.append([
            entry["plan"],
            f"{prof['iteration_time'] * 1e3:.1f}",
            f"{prof['comm_time'] * 1e3:.1f}",
            f"{prof['exposed_comm_time'] * 1e3:.1f}",
            f"{prof['overlap_efficiency'] * 100:.0f}%",
        ])
    print(format_table(
        ["plan", "step (ms)", "comm (ms)", "exposed (ms)", "overlap"],
        rows,
        title=f"{args.model} what-if on {args.mesh}",
    ))
    print(f"round trip: {reply['latency_seconds'] * 1e3:.2f} ms service-side")
    return 0


def cmd_simulate(args) -> int:
    from .simulator import normalize_sim_engine

    try:
        tier = normalize_sim_engine(args.engine, args.reference)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.remote:
        return _run_remote_simulate(args)
    _, _, _, ng = _prep(args.model)
    mesh = _parse_mesh(args.mesh, args.fabric)
    cfg = CostConfig(batch_tokens=args.batch_tokens)

    if args.plan in NAMED_PLANS:
        plan = NAMED_PLANS[args.plan](ng, args.tp)
    else:
        plan = load_plan(args.plan, ng, verify=not args.no_verify)
    routed = route_plan(ng, plan, DEFAULT_REGISTRY)
    if not args.no_verify:
        from .verify import verify_routed

        report = verify_routed(ng, routed, mesh, cfg)
        if not report.ok:
            _print_verification(report, "routed plan")
            return 1
    prof = simulate_iteration(
        routed, mesh, cfg, engine=tier, verify=not args.no_verify
    )
    mem = memory_per_device(routed, mesh, cfg)
    cost = CostModel(mesh, cfg).plan_cost(routed)
    print(format_table(
        ["plan", "step (ms)", "comm (ms)", "exposed (ms)", "cost (ms)",
         "memory (GB)"],
        [[
            args.plan,
            f"{prof.iteration_time * 1e3:.1f}",
            f"{prof.comm_time * 1e3:.1f}",
            f"{prof.exposed_comm_time * 1e3:.1f}",
            f"{cost * 1e3:.1f}",
            f"{mem.total_gb:.2f}",
        ]],
        title=f"{args.model} on {mesh} [{tier} tier]",
    ))
    return 0


def cmd_verify_plan(args) -> int:
    from .verify import verify_plan, verify_rewrite, verify_routed

    _, trimmed, record, ng = _prep(args.model)
    mesh = _parse_mesh(args.mesh, args.fabric)
    cfg = CostConfig(batch_tokens=args.batch_tokens)

    if args.plan is None:
        plan = derive_plan(ng, mesh, cost_config=cfg).plan
        source = "derived"
    elif args.plan in NAMED_PLANS:
        plan = NAMED_PLANS[args.plan](ng, args.tp)
        source = args.plan
    else:
        # verify=False: the point of this command is to *report* problems,
        # not to have the loader raise on the first one
        try:
            plan = load_plan(args.plan, ng, verify=False)
        except OSError as exc:
            raise SystemExit(f"cannot read plan {args.plan!r}: {exc}")
        source = args.plan

    report = verify_plan(ng, plan, mesh)
    try:
        routed = route_plan(ng, plan, DEFAULT_REGISTRY)
    except RoutingError as exc:
        print(f"plan ({source}): routing rejects it — {exc}")
        _print_verification(report, "plan")
        return 1
    report = verify_routed(ng, routed, mesh, cfg)
    rewrite = rewrite_graph(
        trimmed, ng, routed, trim_record=record, packing=cfg.packing
    )
    report.extend(verify_rewrite(ng, routed, rewrite, packing=cfg.packing))
    _print_verification(report, f"{args.model} / {source}")
    return 0 if report.ok else 1


def cmd_verify_lint(args) -> int:
    from .verify import format_diagnostics, lint_paths

    paths = args.paths or [str(Path(__file__).parent)]
    diagnostics = lint_paths(paths)
    for line in format_diagnostics(diagnostics, args.format):
        print(line)
    if diagnostics:
        if args.format == "text":
            print(f"{len(diagnostics)} lint finding(s)")
        return 1
    if args.format == "text":
        print("lint: clean")
    return 0


def cmd_verify_analyze(args) -> int:
    from .verify import format_diagnostics
    from .verify.analyze import (
        analyze_paths,
        apply_baseline,
        default_baseline_path,
        load_baseline,
        write_baseline,
    )

    paths = args.paths or [str(Path(__file__).parent)]
    diagnostics = analyze_paths(paths)

    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    if args.write_baseline:
        write_baseline(baseline_path, diagnostics)
        print(f"baseline: wrote {len(diagnostics)} finding(s) to {baseline_path}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    fresh, matched = apply_baseline(diagnostics, baseline)
    shown = diagnostics if args.all else fresh
    for line in format_diagnostics(shown, args.format):
        print(line)
    errors = [d for d in fresh if d.severity == "error"]
    if args.format == "text":
        print(
            f"analyze: {len(fresh)} new finding(s) "
            f"({len(errors)} error(s)), {matched} baselined"
        )
    # exit 1 on any *new* error; baselined and warning findings pass
    return 1 if errors else 0


def cmd_serve(args) -> int:
    from .service import default_cache_dir, serve

    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    server = serve(
        args.host,
        args.port,
        cache_dir=cache_dir,
        workers=None if args.inline else args.workers,
        lru_capacity=args.lru_capacity,
        queue_limit=args.queue_limit,
        preload=not args.no_preload,
    )
    host, port = server.address
    stats = server.service.stats()
    mode = "inline" if args.inline else f"{stats['workers']} worker process(es)"
    print(f"planner service on http://{host}:{port}")
    print(f"cache: {cache_dir} ({stats['preloaded']} plans preloaded; {mode})")
    print("endpoints: POST /plan  POST /simulate  GET /stats  GET /health  "
          "POST /shutdown")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
        print("\nplanner service stopped")
    return 0


def _open_cache(args):
    from .service import PlanCache, default_cache_dir

    cache_dir = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return cache_dir, PlanCache(cache_dir)


def cmd_cache_stats(args) -> int:
    cache_dir, cache = _open_cache(args)
    rows = []
    for key, _path in cache.disk_entries():
        env, _ = cache.get(key)  # structural load; corrupt blobs quarantine
        if env is None:
            continue
        rows.append([
            key,
            env.engine or "?",
            f"{env.cost * 1e3:.2f}",
            f"{env.timings.get('search_seconds', 0.0):.2f}",
            env.created or "?",
        ])
    print(format_table(
        ["key", "engine", "cost (ms)", "search (s)", "created"],
        rows,
        title=f"plan cache at {cache_dir}",
    ))
    quarantined = cache.quarantined_entries()
    print(f"{len(rows)} valid entr{'y' if len(rows) == 1 else 'ies'}, "
          f"{len(quarantined)} quarantined")
    return 0


def cmd_cache_clear(args) -> int:
    cache_dir, cache = _open_cache(args)
    removed = cache.clear()
    print(f"removed {removed} cached plan(s) from {cache_dir}")
    return 0


def cmd_bench_compare(args) -> int:
    from .obs import regress

    try:
        baseline = regress.load_baselines(args.baseline)
    except FileNotFoundError as exc:
        print(f"bench compare: {exc}")
        return 2
    current = regress.load_bench_files(args.current)
    overrides = regress.load_thresholds(args.baseline)
    result = regress.compare(
        current, baseline,
        default_threshold=args.threshold,
        overrides=overrides,
    )
    table = regress.format_delta_table(result)
    print(table)
    if args.report:
        Path(args.report).write_text(table + "\n")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TAP/TAPAS automatic tensor parallelism"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("models", help="list model presets")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("inspect", help="graph stats + shared subgraphs")
    p.add_argument("model", choices=sorted(MODEL_PRESETS))
    p.add_argument("--min-duplicate", type=int, default=2)
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("plan", help="derive the best plan for a model")
    p.add_argument("model", choices=sorted(MODEL_PRESETS))
    p.add_argument("--mesh", default="2x8", help="workers x gpus, e.g. 2x8")
    p.add_argument("--fabric", choices=("paper", "nvlink"), default="paper")
    p.add_argument("--batch-tokens", type=int, default=16 * 512)
    p.add_argument("--min-duplicate", type=int, default=2)
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="threads for independent family x TP-degree "
                        "searches (0 = auto-detect cpu count)")
    p.add_argument("--engine", choices=("engine", "reference", "columnar"),
                   default="engine",
                   help="evaluation tier: the memoized engine (default), "
                        "the reference per-candidate loop, or the "
                        "vectorized columnar core")
    p.add_argument("--no-engine", action="store_true",
                   help="alias for --engine reference (kept for "
                        "compatibility)")
    p.add_argument("--zero", type=int, nargs="?", const=1, default=0,
                   choices=(0, 1, 2), metavar="STAGE",
                   help="ZeRO-style optimizer-state sharding stage: "
                        "gradients sync via reduce-scatter and updated "
                        "weights all-gather after the step; stage 1 shards "
                        "optimizer state 1/dp, stage 2 also shards "
                        "gradients (bare --zero means stage 1)")
    p.add_argument("-o", "--output", help="save the plan as JSON")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the static plan verifier")
    p.add_argument("--trace", metavar="FILE",
                   help="record the pipeline as a Chrome trace (merged "
                        "with the simulated iteration; open in Perfetto)")
    p.add_argument("--remote", metavar="URL",
                   help="send the request to a running planner daemon "
                        "(see 'repro serve') instead of searching locally")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("simulate", help="price a named or saved plan")
    p.add_argument("model", choices=sorted(MODEL_PRESETS))
    p.add_argument("--plan", default="megatron",
                   help="dp|mha_only|ffn_only|megatron or a JSON plan path")
    p.add_argument("--tp", type=int, default=8)
    p.add_argument("--mesh", default="2x8")
    p.add_argument("--fabric", choices=("paper", "nvlink"), default="paper")
    p.add_argument("--batch-tokens", type=int, default=16 * 512)
    p.add_argument("--engine", choices=("reference", "replay", "columnar"),
                   default=None,
                   help="simulation tier: the reference event loop, "
                        "segment replay (default), or the vectorized "
                        "columnar tier — all bit-identical")
    p.add_argument("--reference", action="store_true",
                   help="alias for --engine reference (kept for "
                        "compatibility)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the static plan verifier (and the columnar "
                        "tape invariant checks)")
    p.add_argument("--remote", metavar="URL",
                   help="send the request to a running planner daemon's "
                        "POST /simulate (see 'repro serve')")
    p.add_argument("--plans", default=None,
                   help="with --remote: comma-separated plan labels "
                        "(named plans and/or 'tap'; default: --plan)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("verify", help="static analysis (plan checker, lint)")
    vsub = p.add_subparsers(dest="verify_command", required=True)

    v = vsub.add_parser("plan", help="re-check a plan against the "
                                     "sharding invariants (no simulation)")
    v.add_argument("model", choices=sorted(MODEL_PRESETS))
    v.add_argument("--plan", default=None,
                   help="dp|mha_only|ffn_only|megatron or a JSON plan path "
                        "(default: derive one)")
    v.add_argument("--tp", type=int, default=8)
    v.add_argument("--mesh", default="2x8")
    v.add_argument("--fabric", choices=("paper", "nvlink"), default="paper")
    v.add_argument("--batch-tokens", type=int, default=16 * 512)
    v.set_defaults(func=cmd_verify_plan)

    v = vsub.add_parser("lint", help="AST rules over the source tree")
    v.add_argument("paths", nargs="*",
                   help="files or directories (default: the repro package)")
    v.add_argument("--format", choices=("text", "json", "github"),
                   default="text",
                   help="output format (github = workflow annotations)")
    v.set_defaults(func=cmd_verify_lint)

    v = vsub.add_parser(
        "analyze",
        help="interprocedural analysis: call-graph purity + lockset races",
    )
    v.add_argument("paths", nargs="*",
                   help="files or directories (default: the repro package)")
    v.add_argument("--format", choices=("text", "json", "github"),
                   default="text",
                   help="output format (github = workflow annotations)")
    v.add_argument("--baseline", default=None,
                   help="baseline JSON path (default: the committed "
                        "verify/analyze_baseline.json)")
    v.add_argument("--no-baseline", action="store_true",
                   help="report every finding, ignoring the baseline")
    v.add_argument("--all", action="store_true",
                   help="show baselined findings too (exit code still "
                        "reflects only new errors)")
    v.add_argument("--write-baseline", action="store_true",
                   help="accept current findings: rewrite the baseline "
                        "file and exit 0")
    v.set_defaults(func=cmd_verify_analyze)

    p = sub.add_parser("serve", help="run the planner service daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8090,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--cache-dir", default=None,
                   help="plan cache directory (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro/plans)")
    p.add_argument("--workers", type=_jobs_arg, default=0,
                   help="search worker processes (0 = auto-detect)")
    p.add_argument("--inline", action="store_true",
                   help="execute searches in-process (no worker pool)")
    p.add_argument("--lru-capacity", type=_positive_int, default=128,
                   help="in-memory LRU size (plans)")
    p.add_argument("--queue-limit", type=_positive_int, default=32,
                   help="max distinct searches in flight before "
                        "fast-failing with 429")
    p.add_argument("--no-preload", action="store_true",
                   help="skip warm-restarting the LRU from the disk cache")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("cache", help="plan cache utilities")
    csub = p.add_subparsers(dest="cache_command", required=True)
    c = csub.add_parser("stats", help="list the cached plans")
    c.add_argument("--cache-dir", default=None)
    c.set_defaults(func=cmd_cache_stats)
    c = csub.add_parser("clear", help="delete every cached plan")
    c.add_argument("--cache-dir", default=None)
    c.set_defaults(func=cmd_cache_clear)

    p = sub.add_parser("bench", help="benchmark utilities")
    bsub = p.add_subparsers(dest="bench_command", required=True)
    b = bsub.add_parser(
        "compare",
        help="gate BENCH_*.json files against recorded baselines",
    )
    b.add_argument("--baseline", default="benchmarks/baselines",
                   help="directory of recorded baseline metrics")
    b.add_argument("--current", default=".",
                   help="directory holding this run's BENCH_*.json files")
    b.add_argument("--threshold", type=float, default=0.20,
                   help="default relative regression threshold "
                        "(per-metric overrides come from thresholds.json)")
    b.add_argument("--report", metavar="FILE",
                   help="also write the delta table to this file")
    b.set_defaults(func=cmd_bench_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
