"""Module-qualified call graph over a Python package, built from the AST.

The interprocedural passes (:mod:`.purity`, :mod:`.locks`) need to know
*who calls whom* across module boundaries — a clock read is only a
determinism bug when a pricing entry point can reach it.  This module
indexes every ``.py`` file of a package into symbol tables and resolves
call sites to fully qualified names (``repro.core.cost.CostModel.plan_cost``),
stdlib-only and without importing any of the analyzed code.

Resolution strategy, most to least precise:

* **Direct names** — ``derive_plan(...)`` resolves through the module's
  import bindings (``import x as y``, ``from .m import f``, relative
  imports) and its own top-level definitions.  Re-exports are chased
  through package ``__init__`` files (``from ..core import CostConfig``
  lands on ``repro.core.cost.CostConfig``).
* **Module attributes** — ``planner.derive_plan(...)`` flattens the
  attribute chain, substitutes the bound module and looks the symbol up
  there.
* **self/cls methods** — ``self._insert(...)`` inside a class resolves
  to the method in that class (or an in-package base class).
* **Class-level dispatch** — ``obj.plan_cost(...)`` with an unknown
  receiver links to *every* in-package method of that name, unless the
  name is a common container/str/file method (the denylist below), where
  name matching would connect everything to everything.
* **Dynamic calls** (computed attributes, callables in data structures)
  stay unresolved; the passes treat unresolved calls as no-ops and the
  limitation is documented in DESIGN.md.

Calling a class links to its ``__init__`` and ``__post_init__`` — object
construction runs that code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "PackageIndex",
    "build_index",
    "index_paths",
    "flatten_attr",
]

#: attribute-call names too generic for class-level dispatch: matching
#: them by name would link dict/list/str/file plumbing to unrelated
#: classes and drown the passes in false paths.
DISPATCH_DENYLIST = frozenset({
    "get", "put", "pop", "popitem", "setdefault", "update", "clear",
    "add", "append", "appendleft", "extend", "remove", "discard",
    "insert", "sort", "reverse", "copy", "count", "index",
    "items", "keys", "values",
    "join", "split", "rsplit", "strip", "lstrip", "rstrip", "format",
    "startswith", "endswith", "lower", "upper", "replace", "encode",
    "decode", "ljust", "rjust", "zfill", "title", "capitalize",
    "read", "write", "readline", "readlines", "seek", "tell", "flush",
    "close", "open",
    "match", "search", "fullmatch", "findall", "finditer", "sub",
    "group", "groups", "groupdict",
    "exists", "is_file", "is_dir", "mkdir", "unlink", "glob", "rglob",
    "stat", "resolve", "with_name", "with_suffix", "relative_to",
    "move_to_end", "most_common", "total",
    "keys", "get_ident", "set", "wait", "release", "acquire",
    "submit", "result", "send", "recv", "connect",
})


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str                 # repro.core.cost.CostModel.plan_cost
    module: str                   # repro.core.cost
    name: str                     # plan_cost
    cls: Optional[str]            # CostModel (None for module functions)
    node: ast.AST                 # the FunctionDef / AsyncFunctionDef
    lineno: int


@dataclass
class ClassInfo:
    """One class definition with its methods and base-class names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)  # unresolved, as written


@dataclass
class ModuleInfo:
    """One parsed source module with its binding table."""

    module: str                   # dotted name
    path: str                     # as given (normalized separators)
    relpath: str                  # package-relative, e.g. repro/core/cost.py
    source: str
    tree: ast.Module
    is_package: bool              # an __init__.py
    bindings: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def flatten_attr(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` → ``["a", "b", "c"]``; None when the base is not a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _module_name(relpath: str) -> Tuple[str, bool]:
    """Dotted module name for a package-relative path, + is-package flag."""
    parts = relpath.replace("\\", "/").split("/")
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]  # strip .py
    return ".".join(parts), is_package


class _ModuleIndexer(ast.NodeVisitor):
    """Collect bindings, functions and classes of one module."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._class: Optional[ClassInfo] = None

    def _package_of(self, level: int) -> str:
        base = self.info.module.split(".")
        if not self.info.is_package:
            base = base[:-1]
        if level > 1:
            base = base[: len(base) - (level - 1)]
        return ".".join(base)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.info.bindings[alias.asname] = alias.name
            else:
                # ``import a.b.c`` binds ``a``; attribute chains flatten
                # through the full dotted path at resolution time.
                root = alias.name.split(".")[0]
                self.info.bindings.setdefault(root, root)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = self._package_of(node.level)
            source = f"{base}.{node.module}" if node.module else base
        else:
            source = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.info.bindings[bound] = f"{source}.{alias.name}"

    def _add_function(self, node) -> None:
        if self._class is not None:
            qual = f"{self._class.qualname}.{node.name}"
            fn = FunctionInfo(
                qualname=qual,
                module=self.info.module,
                name=node.name,
                cls=self._class.name,
                node=node,
                lineno=node.lineno,
            )
            self._class.methods[node.name] = fn
        else:
            qual = f"{self.info.module}.{node.name}"
            fn = FunctionInfo(
                qualname=qual,
                module=self.info.module,
                name=node.name,
                cls=None,
                node=node,
                lineno=node.lineno,
            )
            self.info.functions[node.name] = fn
        # nested defs stay attributed to the enclosing scope: don't recurse

    visit_FunctionDef = _add_function
    visit_AsyncFunctionDef = _add_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._class is not None:
            return  # nested classes: out of scope
        cls = ClassInfo(
            qualname=f"{self.info.module}.{node.name}",
            module=self.info.module,
            name=node.name,
            node=node,
        )
        for base in node.bases:
            parts = flatten_attr(base)
            if parts:
                cls.base_names.append(".".join(parts))
        self.info.classes[node.name] = cls
        self._class = cls
        for child in node.body:
            self.visit(child)
        self._class = None


class PackageIndex:
    """Symbol tables + call graph for one package tree."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        for mod in modules.values():
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
                for fn in cls.methods.values():
                    self.functions[fn.qualname] = fn
                    self.methods_by_name.setdefault(fn.name, []).append(
                        fn.qualname
                    )
        #: caller qualname → callee qualnames
        self.edges: Dict[str, Set[str]] = {}
        #: callee qualname → caller qualnames (built with the edges)
        self.redges: Dict[str, Set[str]] = {}
        self._build_edges()

    # -- symbol resolution -------------------------------------------------

    def resolve_symbol(
        self, module: str, dotted: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve *dotted* (as visible inside *module*) to a qualname.

        Returns the qualname of a function, class or module in the
        package, or None for anything external / dynamic.  Follows
        import bindings and re-export chains through ``__init__``
        modules (bounded depth — import cycles must not hang the
        analyzer).
        """
        if _depth > 16:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        first, _, rest = dotted.partition(".")
        target = info.bindings.get(first)
        if target is None:
            if first in info.functions or first in info.classes:
                target = f"{module}.{first}"
            elif first == module.rsplit(".", 1)[-1]:
                target = module
            else:
                return None
        full = f"{target}.{rest}" if rest else target
        return self._resolve_full(full, _depth)

    def _resolve_full(self, full: str, _depth: int) -> Optional[str]:
        """Resolve an absolute dotted path against the package namespace."""
        if full in self.functions or full in self.classes:
            return full
        if full in self.modules:
            return full
        # longest module prefix + remainder
        parts = full.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                remainder = ".".join(parts[cut:])
                owner = self.modules[prefix]
                head = parts[cut]
                if head in owner.functions or head in owner.classes:
                    candidate = f"{prefix}.{remainder}"
                    if (
                        candidate in self.functions
                        or candidate in self.classes
                    ):
                        return candidate
                    # Class attribute chain (e.g. Cls.method)
                    if head in owner.classes and len(parts) - cut == 2:
                        meth = owner.classes[head].methods.get(parts[cut + 1])
                        if meth is not None:
                            return meth.qualname
                    return None
                # re-export: follow the __init__ binding
                return self.resolve_symbol(prefix, remainder, _depth + 1)
        return None

    def resolve_method(self, cls_qualname: str, name: str) -> Optional[str]:
        """Find *name* on the class or an in-package base (depth-bounded)."""
        seen: Set[str] = set()
        stack = [cls_qualname]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name].qualname
            for base in cls.base_names:
                resolved = self.resolve_symbol(cls.module, base)
                if resolved:
                    stack.append(resolved)
        return None

    # -- call graph --------------------------------------------------------

    def _callee_targets(
        self, fn: FunctionInfo, call: ast.Call
    ) -> List[str]:
        """Qualnames a call site may reach (empty = unresolved)."""
        parts = flatten_attr(call.func)
        if parts is None:
            return []
        targets: List[str] = []
        if parts[0] in ("self", "cls") and fn.cls is not None:
            cls_qual = f"{fn.module}.{fn.cls}"
            if len(parts) == 2:
                meth = self.resolve_method(cls_qual, parts[1])
                if meth:
                    return [meth]
            # ``self.attr.m(...)``: unknown receiver → dispatch on name
            return self._dispatch(parts[-1])
        resolved = self.resolve_symbol(fn.module, ".".join(parts))
        if resolved is None and len(parts) > 1:
            # maybe the prefix resolves to a class (alias.Cls.method)
            prefix = self.resolve_symbol(fn.module, ".".join(parts[:-1]))
            if prefix and prefix in self.classes:
                meth = self.resolve_method(prefix, parts[-1])
                if meth:
                    return [meth]
            if prefix is None and len(parts) > 1:
                return self._dispatch(parts[-1])
        if resolved is None:
            return []
        if resolved in self.classes:
            # constructing the class runs __init__/__post_init__
            for hook in ("__init__", "__post_init__"):
                meth = self.resolve_method(resolved, hook)
                if meth:
                    targets.append(meth)
            return targets
        if resolved in self.functions:
            return [resolved]
        return []

    def _dispatch(self, name: str) -> List[str]:
        if name in DISPATCH_DENYLIST:
            return []
        return list(self.methods_by_name.get(name, ()))

    def _build_edges(self) -> None:
        for fn in self.functions.values():
            callees = self.edges.setdefault(fn.qualname, set())
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    for target in self._callee_targets(fn, node):
                        callees.add(target)
        for caller, callees in self.edges.items():
            for callee in callees:
                self.redges.setdefault(callee, set()).add(caller)

    # -- traversal helpers -------------------------------------------------

    def shortest_path(self, start: str, goal: str) -> Optional[List[str]]:
        """BFS over call edges; a list of qualnames, or None."""
        if start == goal:
            return [start]
        parents: Dict[str, str] = {start: start}
        frontier = [start]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for callee in sorted(self.edges.get(node, ())):
                    if callee in parents:
                        continue
                    parents[callee] = node
                    if callee == goal:
                        path = [callee]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        return list(reversed(path))
                    nxt.append(callee)
            frontier = nxt
        return None


def build_index(
    files: Sequence[Tuple[str, str, str]]
) -> PackageIndex:
    """Index ``(path, relpath, source)`` triples into a PackageIndex.

    *relpath* is the package-relative path (``repro/core/cost.py``) that
    determines the module's dotted name and the scope rules in the
    passes.  Unparseable files are skipped — the per-file linter already
    reports syntax errors.
    """
    modules: Dict[str, ModuleInfo] = {}
    for path, relpath, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        name, is_package = _module_name(relpath)
        info = ModuleInfo(
            module=name,
            path=str(path).replace("\\", "/"),
            relpath=relpath.replace("\\", "/"),
            source=source,
            tree=tree,
            is_package=is_package,
        )
        _ModuleIndexer(info).visit(tree)
        modules[name] = info
    return PackageIndex(modules)


def index_paths(paths: Iterable) -> PackageIndex:
    """Index every ``.py`` file under *paths* (files or directories).

    The package-relative path of each file starts at the innermost
    directory that is itself a package root (its parent has no
    ``__init__.py``), so ``src/repro/core/cost.py`` indexes as module
    ``repro.core.cost`` wherever the tree lives on disk.
    """
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    triples: List[Tuple[str, str, str]] = []
    for f in files:
        root = f.parent
        while (root.parent / "__init__.py").exists():
            root = root.parent
        try:
            rel = f.relative_to(root.parent)
        except ValueError:  # pragma: no cover - f outside its own root
            rel = Path(f.name)
        try:
            triples.append((str(f), str(rel), f.read_text()))
        except OSError:
            continue
    return build_index(triples)
