"""Interprocedural static analysis over the repro source tree.

Three layers, all stdlib-``ast`` — the analyzed code is never imported:

1. :mod:`.callgraph` — a module-qualified call graph for the package
   (import bindings, re-export chasing, ``self``/``cls`` method
   resolution, conservative name-based dispatch).
2. :mod:`.purity` — purity/determinism propagation: taint seeds (clock
   and RNG reads, ``os.environ``, order-dependent set/dict iteration)
   flagged when reachable from the pricing/fingerprint/serialize entry
   points.  This replaces auditing ``_WALLCLOCK_MODULES`` by hand: the
   per-file linter still catches a clock read *in* a pricing module, the
   analyzer catches a pricing module *calling into* one anywhere in the
   package.
3. :mod:`.locks` — lockset analysis for the threaded layers: guarded
   attributes accessed without their lock, inconsistent lock nesting
   order, blocking work inside critical sections.

Findings are ordinary :class:`~repro.verify.diagnostics.Diagnostic`
objects, honor ``# repro-lint: ignore[rule]`` pragmas, and carry a
stable ``key`` (no line numbers) so a committed baseline survives
unrelated edits.  ``repro verify analyze`` is the CLI; CI runs it with
``--format github`` so findings surface as workflow annotations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from ..diagnostics import Diagnostic
from .callgraph import PackageIndex, build_index, index_paths
from .locks import LOCK_SCOPE, run_locks
from .purity import ENTRY_SUFFIXES, TRUSTED_PREFIXES, run_purity

__all__ = [
    "ANALYZE_RULES",
    "ENTRY_SUFFIXES",
    "LOCK_SCOPE",
    "TRUSTED_PREFIXES",
    "PackageIndex",
    "analyze_index",
    "analyze_paths",
    "apply_baseline",
    "baseline_from",
    "build_index",
    "default_baseline_path",
    "index_paths",
    "load_baseline",
    "write_baseline",
]

#: every analyzer rule id → what it means (mirrors LINT_RULES).
ANALYZE_RULES: Dict[str, str] = {
    "analyze/impure-reach": (
        "a deterministic entry point (pricing, fingerprint, serialize, "
        "simulator) transitively reaches a wall-clock, RNG or environ read"
    ),
    "analyze/order-reach": (
        "a deterministic entry point transitively reaches iteration whose "
        "order is unspecified (set iteration, unsorted dict views)"
    ),
    "analyze/unguarded-attr": (
        "an attribute written under a lock elsewhere is read or written "
        "without holding that lock"
    ),
    "analyze/lock-order": (
        "two locks are acquired in both nesting orders (AB/BA deadlock "
        "shape)"
    ),
    "analyze/blocking-under-lock": (
        "a blocking call (plan search, Future.result, disk I/O, sleep) "
        "runs while a lock is held"
    ),
}


def _sort_key(diag: Diagnostic) -> Tuple[str, int, str]:
    where = diag.where or ""
    path, _, line = where.rpartition(":")
    try:
        num = int(line)
    except ValueError:
        path, num = where, 0
    return (path, num, diag.rule)


def analyze_index(index: PackageIndex, **overrides) -> List[Diagnostic]:
    """Run every analysis layer over an already-built index."""
    entries = overrides.get("entries", ENTRY_SUFFIXES)
    trusted = overrides.get("trusted", TRUSTED_PREFIXES)
    scope = overrides.get("scope", LOCK_SCOPE)
    diagnostics = run_purity(index, entries=entries, trusted=trusted)
    diagnostics += run_locks(index, scope=scope)
    return sorted(diagnostics, key=_sort_key)


def analyze_paths(paths: Iterable, **overrides) -> List[Diagnostic]:
    """Index every ``.py`` file under *paths* and run all layers."""
    return analyze_index(index_paths(paths), **overrides)


# -- baseline ---------------------------------------------------------------
#
# The baseline is {stable key: count}: accepted historical findings that
# should not fail CI while still failing on anything *new*.  Keys carry
# no line numbers, so unrelated edits don't churn the file.


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent.parent / "analyze_baseline.json"


def load_baseline(path: Path) -> Dict[str, int]:
    if not Path(path).exists():
        return {}
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    baseline = doc.get("baseline", doc) if isinstance(doc, dict) else {}
    return {str(k): int(v) for k, v in baseline.items()}


def baseline_from(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for diag in diagnostics:
        key = diag.key or f"{diag.rule}|{diag.where}"
        out[key] = out.get(key, 0) + 1
    return out


def write_baseline(path: Path, diagnostics: Iterable[Diagnostic]) -> None:
    doc = {
        "comment": (
            "Accepted `repro verify analyze` findings. Keys are stable "
            "(rule|path|symbol|detail — no line numbers); values are "
            "occurrence counts. Regenerate with "
            "`repro verify analyze --write-baseline`."
        ),
        "baseline": dict(sorted(baseline_from(diagnostics).items())),
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def apply_baseline(
    diagnostics: List[Diagnostic], baseline: Dict[str, int]
) -> Tuple[List[Diagnostic], int]:
    """Split findings into (new, matched-count) against a baseline."""
    budget = dict(baseline)
    fresh: List[Diagnostic] = []
    matched = 0
    for diag in diagnostics:
        key = diag.key or f"{diag.rule}|{diag.where}"
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(diag)
    return fresh, matched
