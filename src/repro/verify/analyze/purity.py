"""Purity / determinism propagation over the call graph.

The planner's contract is that pricing, fingerprinting and serialisation
are *pure*: bit-identical outputs for identical (graph, mesh, config)
inputs, in any process, under any ``PYTHONHASHSEED``.  The per-file
linter enforces this inside a hand-maintained module list
(``_WALLCLOCK_MODULES``); this pass replaces that list's blind spot —
the helper two imports away that reads the clock — by propagating taint
through the interprocedural call graph.

Taint **seeds** (where nondeterminism enters):

* clock reads — ``time.time`` / ``perf_counter`` / ``monotonic`` / …,
  ``datetime.now`` / ``utcnow`` / ``today``
* RNG — anything under ``random.``, ``numpy.random.``, ``secrets.``,
  ``uuid.uuid1/4``
* ambient state — ``os.environ`` / ``os.getenv``
* iteration order — a ``set`` expression iterated into ordered output,
  or unsorted ``dict.items()``/``.keys()``/``.values()`` over a
  non-literal dict

**Entry points** (what must stay deterministic): every function defined
in the pricing/fingerprint/serialisation modules (``ENTRY_SUFFIXES``).
A path from an entry point to a seed is a finding:

* ``analyze/impure-reach`` (error) for clock/RNG/environ seeds, and
* ``analyze/order-reach`` (warning) for iteration-order seeds — dict
  order is insertion-deterministic on CPython ≥ 3.7, so these only bite
  when the insertion order itself was tainted; they are reported for
  audit, not as CI failures.

Modules under ``obs/`` are **trusted**: observability deliberately
timestamps spans and metrics, and its return values never feed back
into pricing results.  Taint neither originates in nor propagates
through trusted modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, ERROR, WARNING
from ..pragmas import suppressed, suppressions
from .callgraph import FunctionInfo, PackageIndex, flatten_attr

__all__ = [
    "ENTRY_SUFFIXES",
    "TRUSTED_PREFIXES",
    "Seed",
    "collect_seeds",
    "run_purity",
]

#: module suffixes whose functions are determinism roots: anything they
#: can reach must be a pure function of the plan, the mesh and the
#: config.  ``simulator/convergence.py`` is deliberately absent — seeded
#: synthetic curves are its purpose (mirrors the linter's exemption).
ENTRY_SUFFIXES: Tuple[str, ...] = (
    "core/cost.py",
    "core/evaluate.py",
    "core/columnar.py",
    "core/packing.py",
    "core/fingerprint.py",
    "core/serialize.py",
    "simulator/columnar.py",
    "simulator/engine.py",
    "simulator/iteration.py",
    "simulator/memory.py",
    "simulator/fusion.py",
    "simulator/trace.py",
)

#: relpath fragments of modules where clock reads are the *point*
#: (span/metric timestamps) and never flow back into results.
TRUSTED_PREFIXES: Tuple[str, ...] = ("obs/",)

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")
_RNG_CALLS = frozenset({"uuid.uuid1", "uuid.uuid4"})

_ENV_PREFIXES = ("os.environ",)
_ENV_CALLS = frozenset({"os.getenv"})

#: callables whose result does not depend on iteration order.
_ORDER_FREE = frozenset({
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset",
})

_DICT_VIEWS = frozenset({"items", "keys", "values"})


@dataclass
class Seed:
    """One nondeterminism source inside a function body."""

    func: str          # qualname of the containing function
    kind: str          # clock | rng | environ | set-order | dict-order
    detail: str        # e.g. "time.perf_counter()"
    lineno: int
    end_lineno: int


def _is_entry_module(relpath: str, entries: Sequence[str]) -> bool:
    return any(relpath.endswith(suffix) for suffix in entries)


def _is_trusted_module(relpath: str, trusted: Sequence[str]) -> bool:
    return any(
        f"/{fragment}" in f"/{relpath}" for fragment in trusted
    )


def _dotted(bindings: Dict[str, str], parts: List[str]) -> str:
    head = bindings.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


def _is_setlike(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setlike(node.left) or _is_setlike(node.right)
    return False


def _dict_view_call(node: ast.AST) -> Optional[str]:
    """``<expr>.items()`` (or keys/values) over a non-literal dict."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEWS
        and not node.args
        and not isinstance(node.func.value, (ast.Dict, ast.DictComp))
    ):
        return node.func.attr
    return None


class _SeedCollector(ast.NodeVisitor):
    """Find every taint seed inside one function body."""

    def __init__(self, fn: FunctionInfo, bindings: Dict[str, str]) -> None:
        self.fn = fn
        self.bindings = bindings
        self.seeds: List[Seed] = []
        self._parents: Dict[ast.AST, ast.AST] = {}

    def run(self) -> List[Seed]:
        for parent in ast.walk(self.fn.node):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.visit(self.fn.node)
        return self.seeds

    def _seed(self, kind: str, detail: str, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", self.fn.lineno)
        self.seeds.append(
            Seed(
                func=self.fn.qualname,
                kind=kind,
                detail=detail,
                lineno=lineno,
                end_lineno=getattr(node, "end_lineno", None) or lineno,
            )
        )

    # -- ambient-state seeds ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        parts = flatten_attr(node.func)
        if parts:
            dotted = _dotted(self.bindings, parts)
            if dotted in _CLOCK_CALLS:
                self._seed("clock", f"{dotted}()", node)
            elif dotted in _RNG_CALLS or dotted.startswith(_RNG_PREFIXES):
                self._seed("rng", f"{dotted}()", node)
            elif dotted in _ENV_CALLS:
                self._seed("environ", f"{dotted}()", node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        parts = flatten_attr(node)
        if parts:
            dotted = _dotted(self.bindings, parts)
            if dotted.startswith(_ENV_PREFIXES):
                self._seed("environ", dotted, node)
                return  # don't double-report nested chains
        self.generic_visit(node)

    # -- iteration-order seeds --------------------------------------------

    def _check_iter(self, iter_node: ast.AST, context: ast.AST) -> None:
        if _is_setlike(iter_node):
            self._seed(
                "set-order", "set expression iterated into ordered output",
                context,
            )
            return
        view = _dict_view_call(iter_node)
        if view is not None:
            self._seed(
                "dict-order",
                f"unsorted dict.{view}() iterated into ordered output",
                context,
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node.iter)
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        if isinstance(node, ast.SetComp):
            self.generic_visit(node)
            return  # output itself is unordered — no order leaks
        if isinstance(node, ast.GeneratorExp):
            parent = self._parents.get(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE
            ):
                self.generic_visit(node)
                return
        for gen in node.generators:
            self._check_iter(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension
    visit_SetComp = _check_comprehension


_KIND_RULES = {
    "clock": ("analyze/impure-reach", ERROR),
    "rng": ("analyze/impure-reach", ERROR),
    "environ": ("analyze/impure-reach", ERROR),
    "set-order": ("analyze/order-reach", WARNING),
    "dict-order": ("analyze/order-reach", WARNING),
}


def collect_seeds(
    index: PackageIndex, trusted: Sequence[str] = TRUSTED_PREFIXES
) -> List[Seed]:
    """Every unsuppressed taint seed in the package, by function."""
    seeds: List[Seed] = []
    supp_cache: Dict[str, Dict[int, Set[str]]] = {}
    for mod in index.modules.values():
        if _is_trusted_module(mod.relpath, trusted):
            continue
        table = supp_cache.setdefault(mod.module, suppressions(mod.source))
        all_bindings = dict(mod.bindings)
        for fn in list(mod.functions.values()) + [
            m for cls in mod.classes.values() for m in cls.methods.values()
        ]:
            for seed in _SeedCollector(fn, all_bindings).run():
                rule, _ = _KIND_RULES[seed.kind]
                if suppressed(table, rule, seed.lineno, seed.end_lineno):
                    continue
                seeds.append(seed)
    return seeds


def run_purity(
    index: PackageIndex,
    *,
    entries: Sequence[str] = ENTRY_SUFFIXES,
    trusted: Sequence[str] = TRUSTED_PREFIXES,
) -> List[Diagnostic]:
    """Flag every entry-point → taint-seed path in the call graph.

    One diagnostic per seed site, anchored at the seed with the nearest
    entry point's call chain in the message — fixing the seed (or
    pragma-ing it) clears every path through it at once.
    """
    trusted_funcs: Set[str] = set()
    entry_funcs: Set[str] = set()
    for mod in index.modules.values():
        names = [fn.qualname for fn in mod.functions.values()]
        names += [
            m.qualname
            for cls in mod.classes.values()
            for m in cls.methods.values()
        ]
        if _is_trusted_module(mod.relpath, trusted):
            trusted_funcs.update(names)
        if _is_entry_module(mod.relpath, entries):
            entry_funcs.update(names)

    seeds = collect_seeds(index, trusted)
    by_func: Dict[str, List[Seed]] = {}
    for seed in seeds:
        by_func.setdefault(seed.func, []).append(seed)

    diagnostics: List[Diagnostic] = []
    for func in sorted(by_func):
        chain = _nearest_entry_chain(
            index, func, entry_funcs, trusted_funcs
        )
        if chain is None:
            continue
        mod = index.modules.get(index.functions[func].module)
        relpath = mod.relpath if mod else ""
        path = mod.path if mod else ""
        for seed in by_func[func]:
            rule, severity = _KIND_RULES[seed.kind]
            via = " -> ".join(_short(index, q) for q in chain)
            message = (
                f"{seed.detail} is reachable from deterministic entry "
                f"point {_short(index, chain[0])}"
            )
            if len(chain) > 1:
                message += f" via {via}"
            diagnostics.append(
                Diagnostic(
                    rule=rule,
                    message=message,
                    where=f"{path}:{seed.lineno}",
                    severity=severity,
                    hint=(
                        "pricing/fingerprint code must be a pure function "
                        "of its inputs; hoist the read to the caller, or "
                        f"suppress with # repro-lint: ignore[{rule.split('/')[1]}] "
                        "if the value provably never reaches a result"
                    ),
                    key=f"{rule}|{relpath}|{func}|{seed.detail}",
                )
            )
    return diagnostics


def _short(index: PackageIndex, qualname: str) -> str:
    """Trim the root package off a qualname for readable chains."""
    root = qualname.split(".", 1)
    return root[1] if len(root) == 2 else qualname


def _nearest_entry_chain(
    index: PackageIndex,
    seed_func: str,
    entry_funcs: Set[str],
    trusted_funcs: Set[str],
) -> Optional[List[str]]:
    """Shortest entry→seed call chain (BFS on reverse edges), or None."""
    if seed_func in trusted_funcs:
        return None
    if seed_func in entry_funcs:
        return [seed_func]
    parents: Dict[str, str] = {seed_func: seed_func}
    frontier = [seed_func]
    while frontier:
        nxt: List[str] = []
        for node in frontier:
            for caller in sorted(index.redges.get(node, ())):
                if caller in parents or caller in trusted_funcs:
                    continue
                parents[caller] = node
                if caller in entry_funcs:
                    chain = [caller]
                    while chain[-1] != seed_func:
                        chain.append(parents[chain[-1]])
                    return chain
                nxt.append(caller)
        frontier = nxt
    return None
