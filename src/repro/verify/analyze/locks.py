"""Lockset analysis for the threaded planner layers.

The service (PR 7) made the planner concurrent: a ThreadingHTTPServer
front end, coalescing waiters, a process-pool fleet, shared caches and
metric sinks.  The dangerous bugs there are not per-file — they are a
``self._stats`` counter incremented under ``self._lock`` in one method
and read bare in another.  This pass infers locking discipline from the
code and flags deviations, Eraser-style:

1. **Guarded-attribute inference.**  Within each class (and for module
   globals, within each module), an attribute is *guarded* when at least
   one write to it happens while a lock is held — ``with self._lock:``
   blocks, including locks inherited interprocedurally: a private helper
   whose every in-class call site holds the lock analyzes as holding it
   too (the ``_insert``-called-under-``get``'s-lock pattern).
2. ``analyze/unguarded-attr`` — any other read or write of a guarded
   attribute outside the guarding lock.  ``__init__``/``__post_init__``/
   ``__new__`` are exempt (the object is not shared yet).  Deliberately
   lock-free fast paths carry ``# repro-lint: ignore[unguarded-attr]``
   pragmas with a justification comment.
3. ``analyze/lock-order`` — two locks acquired in both nesting orders
   anywhere in the tree: the classic AB/BA deadlock shape.
4. ``analyze/blocking-under-lock`` — a blocking operation (plan search,
   ``Future.result``, ``Event.wait``, disk I/O, ``time.sleep``,
   subprocess/network calls) while holding any lock: the lock's critical
   section inherits the whole latency and every waiter stalls.

Scope: ``service/``, ``obs/`` and ``core/evaluate.py`` (the threaded
layers).  Locks are recognised as ``threading``/``multiprocessing``
``Lock``/``RLock``/``Condition``/``Semaphore`` factory assignments, or
any with-context attribute/global whose name contains ``lock``.
Limitations (documented in DESIGN.md): bare ``.acquire()``/``.release()``
pairs are not tracked (the tree uses ``with`` exclusively), receivers
other than ``self`` are not typed, and locks created per-call are
invisible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, ERROR
from ..pragmas import suppressed, suppressions
from .callgraph import ClassInfo, FunctionInfo, ModuleInfo, PackageIndex, flatten_attr

__all__ = ["LOCK_SCOPE", "run_locks"]

#: relpath fragments of the threaded layers the lockset pass covers.
LOCK_SCOPE: Tuple[str, ...] = ("service/", "obs/", "core/evaluate.py")

_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
})

#: method names that mutate their receiver — a ``self._lru.move_to_end``
#: is a write to ``_lru`` for guarded-attribute purposes.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "add", "remove", "discard",
    "insert", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "sort", "reverse", "move_to_end",
})

#: attribute-call names that block the calling thread.
_BLOCKING_ATTRS = frozenset({
    "result", "wait", "read_text", "write_text", "read_bytes",
    "write_bytes", "urlopen", "serve_forever",
})

#: fully qualified blocking calls (resolved through import aliases).
_BLOCKING_DOTTED = frozenset({
    "time.sleep", "os.replace", "os.rename",
    "subprocess.run", "subprocess.check_call", "subprocess.check_output",
    "subprocess.Popen", "urllib.request.urlopen", "shutil.move",
    "shutil.copy", "shutil.copytree",
})

#: in-package search/simulation entry points: a full plan search under a
#: lock serialises the whole service.
_BLOCKING_FUNCS = frozenset({
    "derive_plan", "plan_request", "execute_request",
    "simulate_iteration", "build_request_graph",
})

_INIT_FUNCS = frozenset({"__init__", "__post_init__", "__new__"})

LockId = Tuple[str, str]  # (owner qualname: class or module, name)


@dataclass
class _Access:
    owner: str
    attr: str
    kind: str          # "read" | "write"
    func: str          # containing function qualname
    relpath: str
    path: str
    lineno: int
    end_lineno: int
    held: FrozenSet[LockId]


@dataclass
class _Acquire:
    lock: LockId
    func: str
    relpath: str
    path: str
    lineno: int
    held: FrozenSet[LockId]


@dataclass
class _Blocking:
    desc: str
    func: str
    relpath: str
    path: str
    lineno: int
    end_lineno: int
    held: FrozenSet[LockId]


def _in_scope(relpath: str, scope: Sequence[str]) -> bool:
    padded = f"/{relpath}"
    for fragment in scope:
        if fragment.endswith("/"):
            if f"/{fragment}" in padded:
                return True
        elif relpath.endswith(fragment):
            return True
    return False


def _lock_name(name: str) -> bool:
    return "lock" in name.lower()


def _module_globals(mod: ModuleInfo) -> Set[str]:
    """Names assigned state at module top level (not defs or imports)."""
    out: Set[str] = set()
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                out.add(stmt.target.id)
    return out


def _factory_call(node: ast.AST, bindings: Dict[str, str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    parts = flatten_attr(node.func)
    if not parts:
        return False
    head = bindings.get(parts[0], parts[0])
    dotted = ".".join([head] + parts[1:])
    return dotted in _LOCK_FACTORIES


def _module_locks(mod: ModuleInfo) -> Set[str]:
    """Module-level lock globals (factory assignment or lock-ish name)."""
    locks: Set[str] = set()
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign) and _factory_call(
            stmt.value, mod.bindings
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    locks.add(target.id)
    return locks


def _class_locks(cls: ClassInfo, bindings: Dict[str, str]) -> Set[str]:
    """Attributes of *cls* that hold locks (``self.X = threading.Lock()``)."""
    locks: Set[str] = set()
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign) and _factory_call(
                node.value, bindings
            ):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
    return locks


class _FunctionScan:
    """Lexical walk of one function: accesses, acquisitions, callsites."""

    def __init__(
        self,
        fn: FunctionInfo,
        mod: ModuleInfo,
        index: PackageIndex,
        class_locks: Set[str],
        module_locks: Set[str],
        globals_by_module: Dict[str, Set[str]],
    ) -> None:
        self.fn = fn
        self.mod = mod
        self.index = index
        self.class_locks = class_locks
        self.module_locks = module_locks
        self.globals_by_module = globals_by_module
        self.accesses: List[_Access] = []
        self.acquires: List[_Acquire] = []
        self.blocking: List[_Blocking] = []
        #: callee qualname → lexical held set at the call site
        self.callsites: List[Tuple[str, FrozenSet[LockId]]] = []
        self._locals = self._local_names()

    # -- setup -------------------------------------------------------------

    def _local_names(self) -> Set[str]:
        node = self.fn.node
        names: Set[str] = set()
        args = node.args
        for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            names.add(a.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        declared_global: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                declared_global.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                names.add(sub.id)
        return names - declared_global

    # -- the walk ----------------------------------------------------------

    def run(self) -> None:
        body = getattr(self.fn.node, "body", [])
        self._walk_body(body, frozenset())

    def _walk_body(self, stmts, held: FrozenSet[LockId]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes: out of this function's lockset
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[LockId] = []
                for item in stmt.items:
                    self._scan_expr(item.context_expr, held)
                    lock = self._lock_id(item.context_expr)
                    if lock is not None:
                        already = held | frozenset(acquired)
                        self.acquires.append(
                            _Acquire(
                                lock=lock,
                                func=self.fn.qualname,
                                relpath=self.mod.relpath,
                                path=self.mod.path,
                                lineno=item.context_expr.lineno,
                                held=already,
                            )
                        )
                        acquired.append(lock)
                self._walk_body(stmt.body, held | frozenset(acquired))
                continue
            # generic compound statement: scan expression fields with the
            # current lockset, recurse into statement-list fields
            for _field, value in ast.iter_fields(stmt):
                if isinstance(value, list) and value and isinstance(
                    value[0], (ast.stmt, ast.excepthandler)
                ):
                    if isinstance(value[0], ast.excepthandler):
                        for handler in value:
                            self._walk_body(handler.body, held)
                    else:
                        self._walk_body(value, held)
                elif isinstance(value, ast.expr):
                    self._scan_expr(value, held)
                elif isinstance(value, list) and value and isinstance(
                    value[0], ast.expr
                ):
                    for expr in value:
                        self._scan_expr(expr, held)

    # -- lock identification ----------------------------------------------

    def _lock_id(self, expr: ast.AST) -> Optional[LockId]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and self.fn.cls is not None
        ):
            name = expr.attr
            if name in self.class_locks or _lock_name(name):
                return (f"{self.fn.module}.{self.fn.cls}", name)
            return None
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.module_locks or (
                _lock_name(name) and name in self.globals_by_module.get(
                    self.mod.module, ()
                )
            ):
                return (self.mod.module, name)
        return None

    # -- expression scanning ----------------------------------------------

    def _scan_expr(self, expr: ast.AST, held: FrozenSet[LockId]) -> None:
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(expr):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute):
                self._attr_access(node, parents, held)
            elif isinstance(node, ast.Name):
                self._global_access(node, parents, held)
            elif isinstance(node, ast.Call):
                self._call(node, held)

    def _is_written(self, node: ast.AST, parents: Dict) -> bool:
        """Store/Del on the node or through an attr/subscript chain, or a
        mutating method call on it."""
        ctx = getattr(node, "ctx", None)
        if isinstance(ctx, (ast.Store, ast.Del)):
            return True
        cur = node
        parent = parents.get(cur)
        while isinstance(parent, (ast.Attribute, ast.Subscript)):
            pctx = getattr(parent, "ctx", None)
            if isinstance(pctx, (ast.Store, ast.Del)):
                return True
            cur, parent = parent, parents.get(parent)
        # receiver of a mutating method: parent Attribute(attr in MUTATORS)
        # whose own parent is the Call using it as func
        parent = parents.get(node)
        if (
            isinstance(parent, ast.Attribute)
            and parent.attr in _MUTATORS
            and isinstance(parents.get(parent), ast.Call)
            and parents[parent].func is parent
        ):
            return True
        return False

    def _record(
        self,
        owner: str,
        attr: str,
        node: ast.AST,
        parents: Dict,
        held: FrozenSet[LockId],
    ) -> None:
        kind = "write" if self._is_written(node, parents) else "read"
        lineno = getattr(node, "lineno", self.fn.lineno)
        self.accesses.append(
            _Access(
                owner=owner,
                attr=attr,
                kind=kind,
                func=self.fn.qualname,
                relpath=self.mod.relpath,
                path=self.mod.path,
                lineno=lineno,
                end_lineno=getattr(node, "end_lineno", None) or lineno,
                held=held,
            )
        )

    def _attr_access(
        self, node: ast.Attribute, parents: Dict, held: FrozenSet[LockId]
    ) -> None:
        base = node.value
        if (
            isinstance(base, ast.Name)
            and base.id == "self"
            and self.fn.cls is not None
        ):
            if node.attr in self.class_locks or _lock_name(node.attr):
                return  # the lock itself, not shared data
            owner = f"{self.fn.module}.{self.fn.cls}"
            self._record(owner, node.attr, node, parents, held)
            return
        # cross-module global: alias.GLOBAL where alias binds to a module
        if isinstance(base, ast.Name):
            target = self.mod.bindings.get(base.id)
            if target and target in self.index.modules:
                owned = self.globals_by_module.get(target, set())
                if node.attr in owned and not _lock_name(node.attr):
                    self._record(target, node.attr, node, parents, held)

    def _global_access(
        self, node: ast.Name, parents: Dict, held: FrozenSet[LockId]
    ) -> None:
        name = node.id
        if name in self._locals or name in self.module_locks:
            return
        if _lock_name(name):
            return
        if name not in self.globals_by_module.get(self.mod.module, ()):
            return
        self._record(self.mod.module, name, node, parents, held)

    def _call(self, node: ast.Call, held: FrozenSet[LockId]) -> None:
        parts = flatten_attr(node.func)
        desc: Optional[str] = None
        callee: Optional[str] = None
        if parts is not None:
            dotted_head = self.mod.bindings.get(parts[0], parts[0])
            dotted = ".".join([dotted_head] + parts[1:])
            final = parts[-1]
            if dotted in _BLOCKING_DOTTED:
                desc = f"{dotted}()"
            elif dotted == "open" or final == "open" and len(parts) == 1:
                desc = "open()"
            elif len(parts) > 1 and final in _BLOCKING_ATTRS:
                desc = f".{final}()"
            elif final in _BLOCKING_FUNCS:
                desc = f"{final}() (plan search/simulation)"
            # intra-class / intra-module callsites for lock inheritance
            if (
                len(parts) == 2
                and parts[0] in ("self", "cls")
                and self.fn.cls is not None
            ):
                cls_qual = f"{self.fn.module}.{self.fn.cls}"
                target = self.index.resolve_method(cls_qual, parts[1])
                if target:
                    callee = target
            elif len(parts) == 1:
                fn = self.mod.functions.get(parts[0])
                if fn is not None:
                    callee = fn.qualname
        if desc is not None:
            lineno = getattr(node, "lineno", self.fn.lineno)
            self.blocking.append(
                _Blocking(
                    desc=desc,
                    func=self.fn.qualname,
                    relpath=self.mod.relpath,
                    path=self.mod.path,
                    lineno=lineno,
                    end_lineno=getattr(node, "end_lineno", None) or lineno,
                    held=held,
                )
            )
        if callee is not None:
            self.callsites.append((callee, held))


def _short_lock(lock: LockId) -> str:
    owner, name = lock
    return f"{owner.rsplit('.', 1)[-1]}.{name}"


def _short_func(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def run_locks(
    index: PackageIndex, *, scope: Sequence[str] = LOCK_SCOPE
) -> List[Diagnostic]:
    """Run the lockset pass over every scoped module of *index*."""
    globals_by_module = {
        mod.module: _module_globals(mod) for mod in index.modules.values()
    }
    scans: List[_FunctionScan] = []
    supp: Dict[str, Dict[int, Set[str]]] = {}
    for mod in index.modules.values():
        if not _in_scope(mod.relpath, scope):
            continue
        supp[mod.relpath] = suppressions(mod.source)
        module_locks = _module_locks(mod)
        for fn in mod.functions.values():
            scan = _FunctionScan(
                fn, mod, index, set(), module_locks, globals_by_module
            )
            scan.run()
            scans.append(scan)
        for cls in mod.classes.values():
            locks = _class_locks(cls, mod.bindings)
            for fn in cls.methods.values():
                scan = _FunctionScan(
                    fn, mod, index, locks, module_locks, globals_by_module
                )
                scan.run()
                scans.append(scan)

    must_hold, may_hold = _inherited_contexts(scans)

    def effective(func: str, held: FrozenSet[LockId]) -> FrozenSet[LockId]:
        """Locks provably held (intersection over call paths)."""
        return held | must_hold.get(func, frozenset())

    def possible(func: str, held: FrozenSet[LockId]) -> FrozenSet[LockId]:
        """Locks held on at least one call path (union) — used only to
        decide an attribute *is* guarded; flagging uses the must-hold
        set so a sometimes-locked helper still reports its bare path."""
        return held | may_hold.get(func, frozenset())

    diagnostics: List[Diagnostic] = []
    diagnostics += _unguarded_attr(scans, effective, possible, supp)
    diagnostics += _lock_order(scans, effective, supp)
    diagnostics += _blocking_under_lock(scans, effective, supp)
    return diagnostics


def _inherited_contexts(
    scans: List[_FunctionScan],
) -> Tuple[Dict[str, FrozenSet[LockId]], Dict[str, FrozenSet[LockId]]]:
    """Lock contexts inherited from in-class/module call sites.

    Returns ``(must_hold, may_hold)`` per function qualname: the
    intersection and the union over every call site's lock context,
    each fixpointed a few rounds.  The must-hold pass starts at ⊤
    (optimistic) so recursion converges downward; the may-hold pass
    starts at ∅ and grows.
    """
    sites: Dict[str, List[Tuple[str, FrozenSet[LockId]]]] = {}
    for scan in scans:
        for callee, held in scan.callsites:
            sites.setdefault(callee, []).append((scan.fn.qualname, held))
    TOP = None  # lattice top: unconstrained
    must: Dict[str, Optional[FrozenSet[LockId]]] = {}
    may: Dict[str, FrozenSet[LockId]] = {}
    for scan in scans:
        qual = scan.fn.qualname
        must[qual] = TOP if qual in sites else frozenset()
        may[qual] = frozenset()
    for _ in range(10):
        changed = False
        for callee, callers in sites.items():
            vals = []
            union: FrozenSet[LockId] = frozenset()
            for caller, lexical in callers:
                union = union | lexical | may.get(caller, frozenset())
                ctx = must.get(caller, frozenset())
                if ctx is TOP:
                    continue
                vals.append(lexical | ctx)
            if union != may.get(callee):
                may[callee] = union
                changed = True
            if not vals:
                continue
            new: FrozenSet[LockId] = vals[0]
            for v in vals[1:]:
                new = new & v
            if must.get(callee) != new:
                must[callee] = new
                changed = True
        if not changed:
            break
    must_out = {
        qual: (ctx if ctx is not TOP else frozenset())
        for qual, ctx in must.items()
    }
    return must_out, may


def _unguarded_attr(scans, effective, possible, supp) -> List[Diagnostic]:
    by_attr: Dict[Tuple[str, str], List[_Access]] = {}
    for scan in scans:
        for access in scan.accesses:
            by_attr.setdefault((access.owner, access.attr), []).append(access)
    diagnostics: List[Diagnostic] = []
    for (owner, attr), accesses in sorted(by_attr.items()):
        guards: Set[LockId] = set()
        for access in accesses:
            if access.kind != "write":
                continue
            if access.func.rsplit(".", 1)[-1] in _INIT_FUNCS:
                continue
            guards.update(possible(access.func, access.held))
        if not guards:
            continue  # never written under a lock → not a guarded attr
        for access in accesses:
            if access.func.rsplit(".", 1)[-1] in _INIT_FUNCS:
                continue
            if effective(access.func, access.held) & guards:
                continue
            rule = "analyze/unguarded-attr"
            table = supp.get(access.relpath, {})
            if suppressed(table, rule, access.lineno, access.end_lineno):
                continue
            locks = ", ".join(sorted(_short_lock(g) for g in guards))
            short_owner = owner.rsplit(".", 1)[-1]
            diagnostics.append(
                Diagnostic(
                    rule=rule,
                    message=(
                        f"{short_owner}.{attr} is {access.kind} in "
                        f"{_short_func(access.func)} without holding "
                        f"{locks} (attribute is written under that lock "
                        "elsewhere)"
                    ),
                    where=f"{access.path}:{access.lineno}",
                    severity=ERROR,
                    hint=(
                        "take the lock around the access, or mark a "
                        "deliberate lock-free path with "
                        "# repro-lint: ignore[unguarded-attr] and a "
                        "justification comment"
                    ),
                    key=(
                        f"analyze/unguarded-attr|{access.relpath}|"
                        f"{short_owner}.{attr}|{_short_func(access.func)}|"
                        f"{access.kind}"
                    ),
                )
            )
    return diagnostics


def _lock_order(scans, effective, supp) -> List[Diagnostic]:
    edges: Dict[Tuple[LockId, LockId], _Acquire] = {}
    for scan in scans:
        for acq in scan.acquires:
            for held in effective(acq.func, acq.held):
                if held == acq.lock:
                    continue
                edges.setdefault((held, acq.lock), acq)
    diagnostics: List[Diagnostic] = []
    reported: Set[Tuple[LockId, LockId]] = set()
    for (a, b), acq in sorted(edges.items()):
        if (b, a) not in edges or (b, a) in reported:
            continue
        reported.add((a, b))
        other = edges[(b, a)]
        rule = "analyze/lock-order"
        table = supp.get(acq.relpath, {})
        if suppressed(table, rule, acq.lineno, acq.lineno):
            continue
        diagnostics.append(
            Diagnostic(
                rule=rule,
                message=(
                    f"{_short_lock(a)} → {_short_lock(b)} here, but "
                    f"{_short_lock(b)} → {_short_lock(a)} at "
                    f"{other.path}:{other.lineno} — inconsistent nesting "
                    "order can deadlock"
                ),
                where=f"{acq.path}:{acq.lineno}",
                severity=ERROR,
                hint="pick one global acquisition order and stick to it",
                key=(
                    f"analyze/lock-order|{_short_lock(a)}|{_short_lock(b)}"
                ),
            )
        )
    return diagnostics


def _blocking_under_lock(scans, effective, supp) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for scan in scans:
        table = supp.get(scan.mod.relpath, {})
        for block in scan.blocking:
            held = effective(block.func, block.held)
            if not held:
                continue
            rule = "analyze/blocking-under-lock"
            if suppressed(table, rule, block.lineno, block.end_lineno):
                continue
            locks = ", ".join(sorted(_short_lock(h) for h in held))
            diagnostics.append(
                Diagnostic(
                    rule=rule,
                    message=(
                        f"blocking call {block.desc} in "
                        f"{_short_func(block.func)} while holding {locks}"
                    ),
                    where=f"{block.path}:{block.lineno}",
                    severity=ERROR,
                    hint=(
                        "move the slow operation outside the critical "
                        "section (copy state under the lock, then do the "
                        "work); suppress with "
                        "# repro-lint: ignore[blocking-under-lock] when "
                        "the lock exists to serialise exactly this I/O"
                    ),
                    key=(
                        f"analyze/blocking-under-lock|{block.relpath}|"
                        f"{_short_func(block.func)}|{block.desc}"
                    ),
                )
            )
    return diagnostics
