"""Static verification: a sharding "type checker" for TAP plans.

Three rule-based, simulator-free layers:

* :mod:`repro.verify.plan_checks` — verify a :class:`ShardingPlan`, a
  :class:`RoutedPlan` or a :class:`RewriteResult` against the invariants
  the search, the cost model and the simulator all assume (dimension
  divisibility, pattern-chain connectivity, collective legality,
  gradient-packing conservation, cost sanity, cached-tape shape).
* :mod:`repro.verify.lint` — per-file AST rules over the codebase itself,
  guarding the invariants the memoization layers depend on (no
  frozen-dataclass mutation, structural cache keys, no set-ordered
  output, no wall-clock reads in pricing code).
* :mod:`repro.verify.analyze` — interprocedural analysis: a call graph
  over the whole package, purity propagation from the deterministic
  entry points to clock/RNG/order taint, and lockset analysis for the
  threaded planner layers.

All three emit structured :class:`Diagnostic` records and are wired into
the CLI as ``repro verify plan`` / ``repro verify lint`` /
``repro verify analyze``.
"""

from .diagnostics import Diagnostic, VerificationReport, PlanVerificationError
from .plan_checks import verify_envelope, verify_plan, verify_routed, verify_rewrite
from .lint import LINT_RULES, lint_paths, lint_source
from .analyze import ANALYZE_RULES, analyze_paths
from .output import FORMATS, format_diagnostics

__all__ = [
    "Diagnostic",
    "VerificationReport",
    "PlanVerificationError",
    "verify_envelope",
    "verify_plan",
    "verify_routed",
    "verify_rewrite",
    "LINT_RULES",
    "lint_paths",
    "lint_source",
    "ANALYZE_RULES",
    "analyze_paths",
    "FORMATS",
    "format_diagnostics",
]
