"""Static verification: a sharding "type checker" for TAP plans.

Two halves, both rule-based and simulator-free:

* :mod:`repro.verify.plan_checks` — verify a :class:`ShardingPlan`, a
  :class:`RoutedPlan` or a :class:`RewriteResult` against the invariants
  the search, the cost model and the simulator all assume (dimension
  divisibility, pattern-chain connectivity, collective legality,
  gradient-packing conservation, cost sanity, cached-tape shape).
* :mod:`repro.verify.lint` — AST rules over the codebase itself, guarding
  the invariants the memoization layers depend on (no frozen-dataclass
  mutation, structural cache keys, no set-ordered output, no wall-clock
  reads in pricing code).

Both emit structured :class:`Diagnostic` records and are wired into the
CLI as ``repro verify plan`` / ``repro verify lint``.
"""

from .diagnostics import Diagnostic, VerificationReport, PlanVerificationError
from .plan_checks import verify_envelope, verify_plan, verify_routed, verify_rewrite
from .lint import LINT_RULES, lint_paths, lint_source

__all__ = [
    "Diagnostic",
    "VerificationReport",
    "PlanVerificationError",
    "verify_envelope",
    "verify_plan",
    "verify_routed",
    "verify_rewrite",
    "LINT_RULES",
    "lint_paths",
    "lint_source",
]
