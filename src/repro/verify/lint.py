"""AST lint rules guarding the invariants the memoization layers assume.

PRs 1–2 made the planner and the simulator fast by layering caches over
the hot paths (``BlockEvaluator`` node memos, shard-terms pricing,
``RoutedPlan._sim_cache`` tapes).  Those caches are only sound while the
code obeys a handful of structural rules — frozen dataclasses stay
frozen, cache keys are structural fingerprints, nothing iterates a
``set`` into ordered output, and pricing code never reads wall-clock or
RNG state.  This module enforces them with :mod:`ast`, stdlib-only.

Rules
-----
``lint/frozen-setattr``
    ``object.__setattr__`` outside ``__post_init__`` mutates a frozen
    dataclass someone else may have hashed or cached.
``lint/cache-key``
    ``id(...)`` inside a tuple (an identity-keyed cache key: ids alias
    once the object is collected), or a ``*cache*`` mapping indexed with a
    list/dict/set literal (unhashable or mutable key).  Scoped to
    ``core/`` and ``simulator/``, where the memoization layers live.
``lint/set-order``
    Iterating a set expression into ordered output (a ``for`` loop, a
    list/dict comprehension, or a bare generator) in ``core/`` or
    ``simulator/``: set order varies across processes (PYTHONHASHSEED)
    and breaks bit-exact replay.  Order-insensitive reducers
    (``sorted``/``min``/``max``/``sum``/``any``/``all``/``len``/``set``/
    ``frozenset``) are exempt.
``lint/wallclock``
    ``time.time``/``perf_counter``-style clock reads or any ``random``
    use inside the pricing/simulation modules — results there must be a
    pure function of the plan, the mesh and the config.
``lint/columnar-scalar-loop``
    A Python ``for`` loop or comprehension iterating one of the compiled
    columnar arrays element-wise inside ``core/columnar*.py`` (iterables
    named ``*mat``/``*_col``/``*_cols``/``*_tab``/``*_arr``, including
    through ``range``/``len``/``enumerate``/``zip``/``reversed``).  The
    columnar tier's whole contract is that per-node work is batched array
    ops; a scalar loop over those arrays silently reintroduces the
    per-node floor the tier exists to remove.

False positives are suppressed inline with ``# repro-lint: ignore[rule]``
(comma-separate several rules; the bare rule name or its ``lint/``-prefixed
form both match).  Suppression applies to every line the flagged
statement spans.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from .diagnostics import Diagnostic
from .pragmas import suppressed, suppressions

__all__ = ["LINT_RULES", "lint_source", "lint_paths"]

#: rule id → one-line rationale (DESIGN.md renders this table).
LINT_RULES: Dict[str, str] = {
    "lint/frozen-setattr": "object.__setattr__ outside __post_init__ mutates "
    "frozen (hashed, cached) instances",
    "lint/cache-key": "id()-keyed or unhashable-literal cache keys alias and "
    "poison memoization",
    "lint/set-order": "set iteration order varies per process; ordered output "
    "from it breaks bit-exact replay",
    "lint/wallclock": "clock/RNG reads make pricing impure; costs must be a "
    "function of plan x mesh x config",
    "lint/columnar-scalar-loop": "per-element Python loops over the compiled "
    "columnar arrays reintroduce the per-node floor the tier removes",
}

#: modules where wall-clock/random reads are forbidden (pricing and
#: simulation must be pure).  convergence.py is deliberately absent: seeded
#: synthetic curves are its purpose.  fingerprint/serialize are here
#: because plan cache keys and envelopes must be byte-identical across
#: processes — a timestamp in either poisons the persistent cache.
_WALLCLOCK_MODULES = (
    "core/columnar.py",
    "core/cost.py",
    "core/evaluate.py",
    "core/fingerprint.py",
    "core/packing.py",
    "core/serialize.py",
    "simulator/columnar.py",
    "simulator/engine.py",
    "simulator/iteration.py",
    "simulator/memory.py",
    "simulator/fusion.py",
    "simulator/trace.py",
)

_CLOCK_ATTRS = {"time", "perf_counter", "monotonic", "time_ns", "process_time"}

#: callables whose result does not depend on iteration order.
_ORDER_FREE = {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}


def _norm(path: str) -> str:
    return str(path).replace("\\", "/")


def _in_core_or_simulator(path: str) -> bool:
    p = _norm(path)
    return "/core/" in p or "/simulator/" in p or p.startswith(("core/", "simulator/"))


def _is_wallclock_module(path: str) -> bool:
    p = _norm(path)
    return any(p.endswith(m) for m in _WALLCLOCK_MODULES)


#: iterable-name suffixes that mark a compiled columnar array.
_COLUMNAR_ARRAY_SUFFIXES = ("mat", "_col", "_cols", "_tab", "_arr")

_COLUMNAR_FILE = re.compile(r"(^|/)(core|simulator)/columnar[^/]*\.py$")


def _is_columnar_module(path: str) -> bool:
    return bool(_COLUMNAR_FILE.search(_norm(path)))


def _columnar_iterable(node: ast.AST) -> bool:
    """Does this iterable expression resolve to a columnar array?

    Matches a bare name or attribute whose terminal identifier carries a
    columnar-array suffix, and sees through the usual scalar-loop
    wrappers (``range(len(optmat))``, ``enumerate(...)``, ``zip(...)``,
    ``reversed(...)``).
    """
    if isinstance(node, ast.Name):
        return node.id.endswith(_COLUMNAR_ARRAY_SUFFIXES)
    if isinstance(node, ast.Attribute):
        return node.attr.endswith(_COLUMNAR_ARRAY_SUFFIXES)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("range", "len", "enumerate", "zip", "reversed")
    ):
        return any(_columnar_iterable(a) for a in node.args)
    return False


def _is_setlike(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setlike(node.left) or _is_setlike(node.right)
    return False


def _cacheish_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return "cache" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "cache" in node.attr.lower()
    return False


def _contains_unhashable_literal(node: ast.AST) -> bool:
    return any(
        isinstance(sub, (ast.List, ast.Dict, ast.Set)) for sub in ast.walk(node)
    )


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source: str) -> None:
        self.path = _norm(path)
        self.diagnostics: List[Diagnostic] = []
        self._suppressed = suppressions(source)
        self._parents: Dict[ast.AST, ast.AST] = {}
        self._fn_stack: List[str] = []
        self._scoped = _in_core_or_simulator(self.path)
        self._wallclock = _is_wallclock_module(self.path)
        self._columnar = _is_columnar_module(self.path)

    # -- plumbing ----------------------------------------------------------
    def run(self, tree: ast.AST) -> List[Diagnostic]:
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.visit(tree)
        return self.diagnostics

    def _flag(self, rule: str, node: ast.AST, message: str, hint: str = "") -> None:
        lineno = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", None) or lineno
        if suppressed(self._suppressed, rule, lineno, end):
            return
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                message=message,
                where=f"{self.path}:{lineno}",
                hint=hint,
            )
        )

    def _parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    # -- function tracking (for the __post_init__ exemption) ---------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._fn_stack.append(node.name)
        self.generic_visit(node)
        self._fn_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._fn_stack.append(node.name)
        self.generic_visit(node)
        self._fn_stack.pop()

    # -- lint/frozen-setattr ----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            if "__post_init__" not in self._fn_stack:
                self._flag(
                    "lint/frozen-setattr",
                    node,
                    "object.__setattr__ outside __post_init__ mutates a "
                    "frozen instance",
                    hint="construct a new instance instead; frozen objects "
                    "may already be hashed into a cache",
                )
        # lint/cache-key: id() building a cache key tuple
        if (
            self._scoped
            and isinstance(func, ast.Name)
            and func.id == "id"
            and isinstance(self._parent(node), ast.Tuple)
        ):
            self._flag(
                "lint/cache-key",
                node,
                "id(...) inside a key tuple: ids alias once the object is "
                "collected",
                hint="key on a structural fingerprint, or pin the object and "
                "re-check identity on hit "
                "(# repro-lint: ignore[cache-key] if pinned)",
            )
        # lint/cache-key: cache.get(<unhashable literal>)
        if (
            self._scoped
            and isinstance(func, ast.Attribute)
            and func.attr in ("get", "setdefault", "pop")
            and _cacheish_name(func.value)
            and node.args
            and _contains_unhashable_literal(node.args[0])
        ):
            self._flag(
                "lint/cache-key",
                node,
                "cache accessed with a list/dict/set literal in the key",
                hint="use tuples / frozensets so keys are hashable and stable",
            )
        self.generic_visit(node)

    # -- lint/cache-key: cache[<unhashable literal>] -----------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self._scoped
            and _cacheish_name(node.value)
            and _contains_unhashable_literal(node.slice)
        ):
            self._flag(
                "lint/cache-key",
                node,
                "cache subscripted with a list/dict/set literal in the key",
                hint="use tuples / frozensets so keys are hashable and stable",
            )
        self.generic_visit(node)

    # -- lint/set-order ----------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._scoped and _is_setlike(node.iter):
            self._flag(
                "lint/set-order",
                node.iter,
                "for-loop over a set expression: iteration order is not "
                "deterministic across processes",
                hint="wrap in sorted(...) or restructure to an ordered "
                "container",
            )
        if self._columnar and _columnar_iterable(node.iter):
            self._flag(
                "lint/columnar-scalar-loop",
                node.iter,
                "per-element Python loop over a columnar array",
                hint="batch the work as array ops; if this loop is "
                "genuinely per-row control flow, suppress with "
                "# repro-lint: ignore[columnar-scalar-loop]",
            )
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        if self._columnar:
            for gen in node.generators:
                if _columnar_iterable(gen.iter):
                    self._flag(
                        "lint/columnar-scalar-loop",
                        node,
                        "per-element comprehension over a columnar array",
                        hint="batch the work as array ops; if this loop is "
                        "genuinely per-row control flow, suppress with "
                        "# repro-lint: ignore[columnar-scalar-loop]",
                    )
        if not self._scoped:
            self.generic_visit(node)
            return
        for gen in node.generators:
            if not _is_setlike(gen.iter):
                continue
            if isinstance(node, ast.SetComp):
                continue  # output is itself unordered — no order leaks
            if isinstance(node, ast.GeneratorExp):
                parent = self._parent(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_FREE
                ):
                    continue
            self._flag(
                "lint/set-order",
                node,
                "set expression iterated into ordered output",
                hint="sort first, or feed it only to order-insensitive "
                "reducers (sorted/min/max/sum/any/all)",
            )
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    visit_SetComp = _check_comprehension

    # -- lint/wallclock ----------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._wallclock and isinstance(node.value, ast.Name):
            if node.value.id == "time" and node.attr in _CLOCK_ATTRS:
                self._flag(
                    "lint/wallclock",
                    node,
                    f"time.{node.attr} read in a pricing/simulation module",
                    hint="pass timestamps in from the caller; cost code must "
                    "be a pure function of its inputs",
                )
            elif node.value.id == "random":
                self._flag(
                    "lint/wallclock",
                    node,
                    f"random.{node.attr} used in a pricing/simulation module",
                    hint="randomness breaks bit-exact replay; thread a seeded "
                    "generator through explicitly if needed",
                )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        if self._wallclock:
            for alias in node.names:
                if alias.name == "random":
                    self._flag(
                        "lint/wallclock",
                        node,
                        "random imported in a pricing/simulation module",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._wallclock and node.module in ("time", "random"):
            names = [a.name for a in node.names]
            if node.module == "random" or any(n in _CLOCK_ATTRS for n in names):
                self._flag(
                    "lint/wallclock",
                    node,
                    f"from {node.module} import {', '.join(names)} in a "
                    "pricing/simulation module",
                )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[Diagnostic]:
    """Lint one module's source text; returns its diagnostics."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="lint/syntax",
                message=f"cannot parse: {exc.msg}",
                where=f"{_norm(str(path))}:{exc.lineno or 0}",
            )
        ]
    return _Linter(str(path), source).run(tree)


def lint_paths(paths: Iterable[str | Path]) -> List[Diagnostic]:
    """Lint every ``.py`` file under *paths* (files or directories).

    Files are visited in sorted order so output is stable across runs and
    machines.
    """
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    diagnostics: List[Diagnostic] = []
    for f in files:
        diagnostics.extend(lint_source(f.read_text(), str(f)))
    return diagnostics
