"""The ``# repro-lint: ignore[...]`` suppression pragma, shared by the
per-file linter (:mod:`repro.verify.lint`) and the interprocedural
analyzer (:mod:`repro.verify.analyze`).

A pragma names one or more rules (comma-separated); the bare rule name
and its ``lint/``- or ``analyze/``-prefixed form both match.  Suppression
applies to every line the flagged statement spans, so a pragma on any
line of a multi-line statement silences findings anchored anywhere in
that statement.
"""

from __future__ import annotations

import re
from typing import Dict, Set

__all__ = ["PRAGMA", "short_rule", "suppressions", "suppressed"]

PRAGMA = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")


def short_rule(rule: str) -> str:
    """Strip the ``lint/`` / ``analyze/`` namespace off a rule id."""
    for prefix in ("lint/", "analyze/"):
        if rule.startswith(prefix):
            return rule[len(prefix):]
    return rule


def suppressions(source: str) -> Dict[int, Set[str]]:
    """line number → short rule names suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = PRAGMA.search(line)
        if m:
            out[i] = {
                short_rule(r.strip())
                for r in m.group(1).split(",")
                if r.strip()
            }
    return out


def suppressed(
    table: Dict[int, Set[str]], rule: str, lineno: int, end_lineno: int
) -> bool:
    """Is *rule* suppressed anywhere in the span ``lineno..end_lineno``?"""
    short = short_rule(rule)
    return any(
        short in table.get(line, ()) for line in range(lineno, end_lineno + 1)
    )
