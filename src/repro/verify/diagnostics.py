"""Structured diagnostics shared by the plan verifier and the linter.

A :class:`Diagnostic` is one rule violation: the rule id, a severity, the
place it anchors to (a GraphNode path for plan checks, ``file:line`` for
lint findings), the statement of the problem, and a fix hint.  Verifiers
never raise on the first problem — they collect everything into a
:class:`VerificationReport` so a corrupted plan shows all of its defects
at once, the way a compiler reports every type error in a file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "VerificationReport",
    "PlanVerificationError",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation found by a verifier or the linter."""

    rule: str                 # e.g. "plan/divisibility", "lint/cache-key"
    message: str              # what is wrong
    where: str = ""           # GraphNode path or file:line
    severity: str = ERROR
    hint: str = ""            # how to fix it
    #: stable identity for baseline matching — no line numbers, so a
    #: finding keeps its key while unrelated edits shift the file.
    key: str = ""

    def __post_init__(self) -> None:
        if self.severity not in (ERROR, WARNING):
            raise ValueError(f"bad severity {self.severity!r}")

    def format(self) -> str:
        loc = f"{self.where}: " if self.where else ""
        hint = f"  (hint: {self.hint})" if self.hint else ""
        return f"{self.severity}[{self.rule}] {loc}{self.message}{hint}"

    def as_dict(self) -> dict:
        """JSON-ready form (the ``--format json`` record shape)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "where": self.where,
            "message": self.message,
            "hint": self.hint,
            "key": self.key,
        }


class PlanVerificationError(ValueError):
    """A plan failed static verification; carries the full report."""

    def __init__(self, report: "VerificationReport") -> None:
        self.report = report
        super().__init__(report.describe())


@dataclass
class VerificationReport:
    """Every diagnostic one verification pass produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: how many rules the pass evaluated (context for "0 diagnostics")
    rules_checked: int = 0

    def add(
        self,
        rule: str,
        message: str,
        where: str = "",
        severity: str = ERROR,
        hint: str = "",
    ) -> None:
        self.diagnostics.append(Diagnostic(rule, message, where, severity, hint))

    def extend(self, other: "VerificationReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.rules_checked += other.rules_checked

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostic was recorded."""
        return not self.errors

    def rules_fired(self) -> List[str]:
        seen: List[str] = []
        for d in self.diagnostics:
            if d.rule not in seen:
                seen.append(d.rule)
        return seen

    def has_rule(self, rule: str) -> bool:
        return any(d.rule == rule for d in self.diagnostics)

    def describe(self) -> str:
        if not self.diagnostics:
            return f"verified: {self.rules_checked} rules, no diagnostics"
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), "
            f"{len(self.diagnostics) - len(self.errors)} warning(s)"
        )
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise PlanVerificationError(self)
