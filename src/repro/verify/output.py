"""Render diagnostics in the three CLI output formats.

``text`` is the human form (``Diagnostic.format()``).  ``json`` is one
machine-readable document for tooling and the CI report artifact.
``github`` emits GitHub Actions workflow commands — ``::error`` /
``::warning`` lines with ``file=``/``line=`` properties — so findings
show up as inline annotations on the pull request diff.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Tuple

from .diagnostics import Diagnostic, ERROR

__all__ = ["FORMATS", "format_diagnostics", "split_where"]

FORMATS = ("text", "json", "github")


def split_where(where: str) -> Tuple[str, Optional[int]]:
    """``path:123`` → ``("path", 123)``; plain locations get line None."""
    path, sep, line = where.rpartition(":")
    if sep and line.isdigit():
        return path, int(line)
    return where, None


def _github_escape(value: str) -> str:
    # workflow-command data: %, CR and LF must be %-escaped
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _github_line(diag: Diagnostic) -> str:
    level = "error" if diag.severity == ERROR else "warning"
    path, line = split_where(diag.where)
    props = []
    if path:
        props.append(f"file={_github_escape(path)}")
    if line is not None:
        props.append(f"line={line}")
    props.append(f"title={_github_escape(diag.rule)}")
    message = diag.message
    if diag.hint:
        message = f"{message} (hint: {diag.hint})"
    return f"::{level} {','.join(props)}::{_github_escape(message)}"


def format_diagnostics(
    diagnostics: Sequence[Diagnostic], fmt: str = "text"
) -> List[str]:
    """Render *diagnostics* as output lines for the chosen format.

    ``json`` returns a single line holding the whole document so callers
    can pipe it to a file; the document carries a summary block with
    error/warning counts.
    """
    if fmt == "text":
        return [d.format() for d in diagnostics]
    if fmt == "github":
        return [_github_line(d) for d in diagnostics]
    if fmt == "json":
        errors = sum(1 for d in diagnostics if d.severity == ERROR)
        doc = {
            "diagnostics": [d.as_dict() for d in diagnostics],
            "summary": {
                "total": len(diagnostics),
                "errors": errors,
                "warnings": len(diagnostics) - errors,
            },
        }
        return [json.dumps(doc, indent=2)]
    raise ValueError(f"unknown format {fmt!r} (expected one of {FORMATS})")
