"""Rule-based static verification of TAP plans — the sharding "type checker".

Every check here is a *re-derivation*: the verifier recomputes what a
correct plan must look like from first principles (the SRC conversion
table, the pattern registry, the packing rules) and compares the artifact
against it.  It deliberately does **not** call :mod:`repro.core.routing` —
the layout-propagation walk below is an independent re-implementation of
Algorithm 3, so a bug in the router and a bug in the verifier would have
to coincide to slip through.  Nothing here prices time or touches the
simulator's event loop; a verification pass over a fig. 9-scale plan is
microseconds.

Rule ids (see DESIGN.md "Static verification" for rationales):

=====================  ====================================================
``plan/unknown-node``    assignment names a node absent or weightless
``plan/unknown-pattern`` pattern name unknown for the node's kind
``plan/mesh-degree``     tp_degree does not divide the mesh's device count
``plan/divisibility``    split weight dim not divisible by tp_degree
``plan/chain``           a producer→consumer hop has no SRC conversion
``plan/partial-nonlinear`` pattern leaves a partial value under a nonlinearity
``plan/partial-leaf``    a graph leaf ends in the partial (P) layout
``routed/order``         routed.order is not a topological cover of the graph
``routed/layout``        shard layouts disagree with independent propagation
``routed/conversion``    conversions table and forward events disagree
``routed/grad-sync``     gradient-sync events broken (missing/duplicated/axis)
``routed/cost``          cost model sanity (negative terms, DP pricing comms)
``pack/conservation``    bucket bytes do not sum to the gradient stream
``pack/coverage``        a gradient packed zero or multiple times
``pack/bucket-size``     a fused bucket exceeds the chunk cap
``pack/mismatch``        rewrite's buckets differ from a fresh packing
``sim/tape``             a cached replay tape is inconsistent with the plan
``sim/tape-columnar``    a cached columnar tape's flat arrays are corrupt
``rewrite/missing-collective`` a priced conversion edge has no comm op
``rewrite/orphan-comm``  a comm op no conversion or pattern accounts for
``rewrite/duplicate-comm`` one edge carries two collectives
``rewrite/count``        num_comm_ops disagrees with the graph
=====================  ====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cluster import Mesh
from ..core.cost import CostConfig, CostModel
from ..core.graphnode import GraphNode, NodeGraph
from ..core.packing import PackingConfig, pack_gradients
from ..core.patterns import (
    CONVERSIONS,
    DEFAULT_REGISTRY,
    FALLBACK_REPLICATE,
    Layout,
    PatternRegistry,
    ShardingPattern,
)
from ..core.plan import RoutedPlan, ShardingPlan
from ..graph import OpType
from .diagnostics import ERROR, WARNING, VerificationReport

__all__ = [
    "verify_plan",
    "verify_routed",
    "verify_rewrite",
    "verify_envelope",
    "ALL_RULES",
]

#: rule id → one-line rationale (DESIGN.md renders this table).
ALL_RULES: Dict[str, str] = {
    "plan/unknown-node": "an assignment to a missing/weightless node would be silently ignored",
    "plan/unknown-pattern": "an unknown pattern name can never route",
    "plan/mesh-degree": "tp must divide the device count or no group factorisation exists",
    "plan/zero-stage": "a ZeRO stage outside {0, 1, 2} has no defined sharding semantics",
    "plan/divisibility": "uneven shards break the SPMD same-shape guarantee",
    "plan/chain": "a hop outside the SRC conversion table has no collective (Algorithm 3)",
    "plan/partial-nonlinear": "f(sum x_i) != sum f(x_i): partials must resolve before nonlinearities",
    "plan/partial-leaf": "a leaf's partial summands are never reduced — wrong output",
    "routed/order": "the simulator replays routed.order; it must cover the graph topologically",
    "routed/layout": "cross-check against an independent Algorithm 3 layout propagation",
    "routed/conversion": "every claimed conversion needs exactly one priced forward event",
    "routed/grad-sync": "each trainable shard syncs its gradient exactly once, via the stage's collective, on the right axis",
    "routed/cost": "cost terms are times/bytes: non-negative; pure DP prices zero TP comm; no gather time with ZeRO off",
    "pack/conservation": "packing must move every gradient byte exactly once",
    "pack/coverage": "a gradient packed twice is synced twice (wrong update)",
    "pack/bucket-size": "fused buckets above the chunk cap stall the update pipeline",
    "pack/mismatch": "rewrite's buckets must equal a fresh packing of the plan's stream",
    "sim/tape": "a cached tape inconsistent with the plan would replay a stale timeline",
    "sim/tape-columnar": "corrupt flat columns (lengths, ids, segment closure) would vectorize a wrong timeline",
    "rewrite/missing-collective": "a priced conversion edge without its comm op computes garbage",
    "rewrite/orphan-comm": "a comm op nothing priced means cost and graph disagree",
    "rewrite/duplicate-comm": "one edge must carry exactly the collective the plan claims",
    "rewrite/count": "num_comm_ops is reported downstream; it must match the graph",
    "cache/kind": "a blob that is not a cache envelope must never be served as a plan",
    "cache/schema": "a different schema/envelope version may encode different semantics",
    "cache/key": "an envelope filed under the wrong key would answer the wrong request",
    "cache/fingerprint": "fingerprints must be present and well-formed to audit a hit",
    "cache/payload": "the embedded routed-plan document must be structurally present",
}

# ---------------------------------------------------------------------------
# Independent Algorithm-3 re-implementation (deliberately NOT routing.py)
# ---------------------------------------------------------------------------

#: Op types nonlinear in their input — a partial value entering them breaks
#: f(Σx) = Σf(x).  Declared locally (not imported from routing.py) so the
#: verifier and the router must *agree*, not merely share a constant.
_NONLINEAR = frozenset(
    {OpType.RELU, OpType.GELU, OpType.SOFTMAX, OpType.LAYERNORM, OpType.CROSS_ENTROPY}
)

#: Ops reducing over the feature axis: they cannot run on a feature shard.
_FEATURE_AXIS = frozenset({OpType.LAYERNORM, OpType.CROSS_ENTROPY})


def _primary_weight(node: GraphNode):
    return max(node.weight_specs, key=lambda w: w.num_elements)


def _nonlinear_after_weight(node: GraphNode) -> bool:
    weighted_seen = False
    for op in node.ops:
        if op.has_weight and not weighted_seen:
            weighted_seen = True
            continue
        if weighted_seen and op.op_type in _NONLINEAR:
            return True
    return False


def _follow(input_layouts: List[str], feature_axis: bool) -> str:
    """Layout a weightless node demands (independent restatement of §4.5)."""
    if not input_layouts:
        return Layout.D
    if Layout.S in input_layouts:
        required = Layout.S
    elif Layout.P in input_layouts:
        required = Layout.D if Layout.D in input_layouts else Layout.R
    elif Layout.D in input_layouts:
        required = Layout.D
    else:
        required = Layout.R
    if required == Layout.S and feature_axis:
        required = Layout.D if Layout.D in input_layouts else Layout.R
    return required


def _pattern_for(
    node: GraphNode,
    pattern_name: str,
    registry: PatternRegistry,
    report: VerificationReport,
) -> ShardingPattern:
    """Resolve a node's pattern, reporting (not raising) unknown names."""
    if pattern_name != "replicate":
        try:
            return registry.lookup(node.kind, pattern_name)
        except KeyError:
            report.add(
                "plan/unknown-pattern",
                f"no pattern {pattern_name!r} for kind {node.kind!r}",
                where=node.name,
                hint="use one of the registered patterns for this kind, "
                "or 'replicate'",
            )
            # fall through to replicate so propagation can continue
    for p in registry.for_kind(node.kind):
        if p.name == "replicate":
            return p
    return FALLBACK_REPLICATE


def _propagate(
    graph: NodeGraph,
    plan: ShardingPlan,
    registry: PatternRegistry,
    report: VerificationReport,
) -> Dict[str, Tuple[str, str]]:
    """Walk the graph root→leaf assigning (input, output) layouts per node.

    Emits ``plan/divisibility``, ``plan/chain``, ``plan/partial-nonlinear``
    and ``plan/partial-leaf`` diagnostics along the way; always completes
    (a broken hop is reported and propagation continues with the declared
    layouts, so one corrupted plan surfaces *all* of its defects).
    """
    tp = plan.tp_degree
    layouts: Dict[str, Tuple[str, str]] = {}
    for name in graph.topo_order():
        node = graph.node(name)
        input_layouts = [layouts[i][1] for i in node.inputs]
        if node.weights:
            pattern = _pattern_for(node, plan.pattern_for(name), registry, report)
            if tp == 1:
                if not pattern.is_replicate:
                    report.add(
                        "plan/divisibility",
                        f"pattern {pattern.name!r} cannot shard at tp=1",
                        where=name,
                        hint="use 'replicate' (pure data parallelism) at tp=1",
                    )
                required = out = Layout.D
            else:
                required, out = pattern.input_layout, pattern.output_layout
                if pattern.weight_shard.is_split:
                    primary = _primary_weight(node)
                    axis = pattern.weight_shard.axis
                    if not primary.can_split(axis, tp):
                        dim = (
                            primary.shape[axis]
                            if -primary.rank <= axis < primary.rank
                            else "?"
                        )
                        report.add(
                            "plan/divisibility",
                            f"weight dim {dim} (axis {axis}) of "
                            f"{primary.shape} not divisible by tp={tp}",
                            where=name,
                            hint="pick a tp_degree dividing the dim, or replicate",
                        )
                if out == Layout.P and _nonlinear_after_weight(node):
                    report.add(
                        "plan/partial-nonlinear",
                        f"pattern {pattern.name!r} leaves a partial value "
                        "under a nonlinearity inside the node",
                        where=name,
                        hint="a partial-producing pattern needs the nonlinearity "
                        "in a downstream node (or a different pattern)",
                    )
        else:
            feature_axis = any(op.op_type in _FEATURE_AXIS for op in node.ops)
            required = out = _follow(input_layouts, feature_axis)

        for src, src_layout in zip(node.inputs, input_layouts):
            if (src_layout, required) not in CONVERSIONS:
                report.add(
                    "plan/chain",
                    f"no sharding-pattern chain connects "
                    f"{src_layout} -> {required}",
                    where=f"{src} -> {name}",
                    hint="the SRC table has no collective for this hop; "
                    "change one endpoint's pattern",
                )
        layouts[name] = (required, out)

    for leaf in graph.leaves():
        if layouts.get(leaf.name, ("D", "D"))[1] == Layout.P:
            report.add(
                "plan/partial-leaf",
                "graph leaf ends with a partial (P) value",
                where=leaf.name,
                hint="partials must be reduced before leaving the graph",
            )
    return layouts


# ---------------------------------------------------------------------------
# verify_plan
# ---------------------------------------------------------------------------

def _verify_plan_impl(
    graph: NodeGraph,
    plan: ShardingPlan,
    mesh: Optional[Mesh],
    registry: PatternRegistry,
) -> Tuple[VerificationReport, Dict[str, Tuple[str, str]]]:
    report = VerificationReport(rules_checked=8)

    # ShardingPlan.__post_init__ enforces the range for plans built through
    # the library; re-checking here covers hand-built or monkeyed objects
    # before the stage steers collective selection downstream.
    zero = getattr(plan, "zero_stage", 0)
    if zero not in (0, 1, 2):
        report.add(
            "plan/zero-stage",
            f"zero_stage {zero!r} is outside the supported range (0, 1, 2)",
            hint="0 = off, 1 = optimizer-state sharding, 2 = + gradients",
        )

    for node_name, pattern_name in plan.assignment:
        if node_name not in graph:
            report.add(
                "plan/unknown-node",
                f"assignment references {node_name!r}, absent from the graph",
                where=node_name,
                hint="the plan was derived for a different model or version",
            )
        elif not graph.node(node_name).weights and pattern_name != "replicate":
            report.add(
                "plan/unknown-node",
                f"assignment shards weightless node {node_name!r}",
                where=node_name,
                hint="only weight-carrying nodes take patterns",
            )

    if mesh is not None and mesh.num_devices % plan.tp_degree != 0:
        report.add(
            "plan/mesh-degree",
            f"tp_degree {plan.tp_degree} does not divide "
            f"{mesh.num_devices} devices",
            hint="tp must evenly factor the mesh into tp x dp groups",
        )

    layouts = _propagate(graph, plan, registry, report)
    return report, layouts


def verify_plan(
    graph: NodeGraph,
    plan: ShardingPlan,
    mesh: Optional[Mesh] = None,
    registry: PatternRegistry = DEFAULT_REGISTRY,
) -> VerificationReport:
    """Statically check *plan* against *graph* (and optionally *mesh*).

    Runs the plan-level rules: assignment hygiene, mesh/degree arithmetic,
    weight-dimension divisibility, and the independent layout propagation
    that re-derives Algorithm 3's connectivity verdict.
    """
    report, _ = _verify_plan_impl(graph, plan, mesh, registry)
    return report


# ---------------------------------------------------------------------------
# verify_routed
# ---------------------------------------------------------------------------

def _check_order(
    graph: NodeGraph, routed: RoutedPlan, report: VerificationReport
) -> None:
    names = {n.name for n in graph}
    order = routed.order
    if len(set(order)) != len(order):
        dupes = sorted({n for n in order if order.count(n) > 1})
        report.add(
            "routed/order",
            f"routed.order repeats nodes: {dupes[:5]}",
            hint="each node is simulated once per iteration",
        )
    missing = sorted(names - set(order))
    extra = sorted(set(order) - names)
    if missing:
        report.add(
            "routed/order",
            f"routed.order misses graph nodes: {missing[:5]}",
            hint="re-route the plan against this graph",
        )
    if extra:
        report.add(
            "routed/order",
            f"routed.order names unknown nodes: {extra[:5]}",
            hint="the routed plan belongs to a different graph",
        )
    pos = {n: i for i, n in enumerate(order)}
    for name in order:
        if name not in names:
            continue
        for src in graph.node(name).inputs:
            if src in pos and pos[src] >= pos[name]:
                report.add(
                    "routed/order",
                    f"{src!r} is ordered after its consumer {name!r}",
                    where=name,
                    hint="routed.order must be topological",
                )
    shard_names = set(routed.shards)
    if shard_names != set(order):
        diff = sorted(shard_names.symmetric_difference(set(order)))
        report.add(
            "routed/order",
            f"shards and order disagree on membership: {diff[:5]}",
        )


def _check_layouts(
    routed: RoutedPlan,
    layouts: Dict[str, Tuple[str, str]],
    report: VerificationReport,
) -> None:
    for name, (required, out) in layouts.items():
        shard = routed.shards.get(name)
        if shard is None:
            continue  # routed/order already flagged it
        if shard.input_layout != required or shard.output_layout != out:
            report.add(
                "routed/layout",
                f"routed layouts {shard.input_layout}->{shard.output_layout} "
                f"disagree with independent propagation {required}->{out}",
                where=name,
                hint="the routed plan was mutated or routed against a "
                "different graph/registry",
            )


def _check_conversions(
    graph: NodeGraph, routed: RoutedPlan, report: VerificationReport
) -> None:
    # claims must reassemble into exactly the conversions table
    merged: Dict[Tuple[str, str], str] = {}
    for claims in routed.claims.values():
        for key, value in claims:
            merged[key] = value
    if merged != routed.conversions:
        keys = sorted(
            set(merged).symmetric_difference(set(routed.conversions))
        ) or [k for k in merged if merged[k] != routed.conversions.get(k)]
        report.add(
            "routed/conversion",
            f"per-node claims do not reassemble the conversions table "
            f"(first differences: {keys[:3]})",
            hint="claims drive the incremental-routing prefix reuse; "
            "they must mirror conversions exactly",
        )

    # every non-free conversion has exactly one forward event; every
    # sourced forward event has a matching claim
    events: Dict[Tuple[str, str], List[str]] = {}
    for name in routed.order:
        shard = routed.shards.get(name)
        if shard is None:
            continue
        for ev in shard.events:
            if ev.phase != "forward" or not ev.src:
                continue
            owner_key = (ev.src, shard.input_layout)
            events.setdefault(owner_key, []).append(ev.collective)
            claimed = routed.conversions.get(owner_key)
            if claimed != ev.collective:
                report.add(
                    "routed/conversion",
                    f"forward {ev.collective} on edge {ev.src!r} has no "
                    f"matching conversion claim (table says {claimed!r})",
                    where=name,
                )
            if ev.src in graph and name in graph:
                if ev.src not in graph.node(name).inputs:
                    report.add(
                        "routed/conversion",
                        f"conversion event sourced at {ev.src!r}, which is "
                        f"not an input of {name!r}",
                        where=name,
                    )
    for key, collective in routed.conversions.items():
        if not collective:
            continue  # free hop (slice) or backward-only conversion
        got = events.get(key, [])
        if len(got) != 1:
            src, layout = key
            report.add(
                "routed/conversion",
                f"conversion ({src!r} -> {layout}) claims {collective!r} "
                f"but {len(got)} forward events price it",
                hint="exactly one consumer must own each deduplicated "
                "conversion's event",
            )


def _check_grad_sync(routed: RoutedPlan, report: VerificationReport) -> None:
    # With the ZeRO axis on, each replica keeps a 1/dp gradient slice for
    # its sharded optimizer step — the sync must be a reduce-scatter; with
    # it off, the classic all-reduce.  A mismatch either way means the
    # router and the plan disagree about the weight-update scheme.
    want_collective = (
        "reduce_scatter" if routed.plan.zero_stage >= 1 else "all_reduce"
    )
    for name in routed.order:
        shard = routed.shards.get(name)
        if shard is None:
            continue
        sync = [ev for ev in shard.events if ev.overlappable]
        for ev in sync:
            if ev.phase != "backward" or ev.collective != want_collective or ev.axis not in ("dp", "all"):
                report.add(
                    "routed/grad-sync",
                    f"overlappable event is {ev.phase}/{ev.collective}/{ev.axis}; "
                    f"gradient sync must be a backward {want_collective} on "
                    "dp or all"
                    + (
                        f" (plan has zero_stage={routed.plan.zero_stage})"
                        if routed.plan.zero_stage
                        else ""
                    ),
                    where=name,
                )
        expected = 1 if shard.local_parameters > 0 else 0
        if len(sync) != expected:
            report.add(
                "routed/grad-sync",
                f"{len(sync)} gradient-sync events for a shard with "
                f"{shard.local_parameters} local parameters (expected {expected})",
                where=name,
                hint="each trainable shard synchronises exactly once per step",
            )
        if expected == 1 and len(sync) == 1:
            split = shard.local_weight_bytes < shard.full_weight_bytes
            want_axis = "dp" if split else "all"
            if sync[0].axis != want_axis:
                report.add(
                    "routed/grad-sync",
                    f"gradient sync on axis {sync[0].axis!r}; "
                    f"{'split' if split else 'replicated'} weights sync on "
                    f"{want_axis!r}",
                    where=name,
                )


def _check_cost(
    routed: RoutedPlan,
    mesh: Mesh,
    config: Optional[CostConfig],
    report: VerificationReport,
) -> None:
    cfg = config or CostConfig()
    try:
        bd = CostModel(mesh, cfg).estimate(routed)
    except Exception as exc:  # mesh/degree mismatch already reported
        report.add(
            "routed/cost", f"cost model failed to price the plan: {exc}"
        )
        return
    for field_name in (
        "forward_compute",
        "backward_compute",
        "forward_comm",
        "backward_tp_comm",
        "gradient_comm",
        "weight_gather_comm",
        "overlapped_gradient_comm",
    ):
        value = getattr(bd, field_name)
        if value < 0:
            report.add(
                "routed/cost",
                f"negative cost term {field_name}={value}",
                hint="times and byte counts can never be negative",
            )
    if routed.plan.zero_stage == 0 and bd.weight_gather_comm != 0.0:
        report.add(
            "routed/cost",
            "plan with the ZeRO axis off prices weight-gather time "
            f"({bd.weight_gather_comm})",
            hint="all-gather of updated weights only exists at zero_stage >= 1",
        )
    if bd.overlapped_gradient_comm > bd.gradient_comm:
        report.add(
            "routed/cost",
            "overlap hides more gradient time than exists "
            f"({bd.overlapped_gradient_comm} > {bd.gradient_comm})",
        )
    if routed.plan.num_sharded == 0 or routed.tp_degree == 1:
        tp_events = [
            ev for ev in routed.events() if ev.axis == "tp"
        ]
        if tp_events or bd.forward_comm != 0 or bd.backward_tp_comm != 0:
            report.add(
                "routed/cost",
                "pure data-parallel plan prices nonzero TP communication "
                f"({len(tp_events)} tp events, fwd={bd.forward_comm}, "
                f"bwd={bd.backward_tp_comm})",
                hint="replicated patterns imply zero forward collectives",
            )


def _check_packing(
    stream: List[int],
    buckets,
    packing: PackingConfig,
    report: VerificationReport,
    where: str = "",
) -> None:
    if sum(b.nbytes for b in buckets) != sum(stream):
        report.add(
            "pack/conservation",
            f"buckets hold {sum(b.nbytes for b in buckets)} bytes; the "
            f"gradient stream has {sum(stream)}",
            where=where,
            hint="packing may regroup gradients but never drop or invent bytes",
        )
    if sum(b.num_tensors for b in buckets) != len(stream):
        report.add(
            "pack/coverage",
            f"buckets pack {sum(b.num_tensors for b in buckets)} tensors; "
            f"the stream has {len(stream)}",
            where=where,
            hint="every weight gradient is packed exactly once",
        )
    if packing.enabled:
        for i, b in enumerate(buckets):
            if b.num_tensors > 1 and b.nbytes > packing.chunk_bytes:
                report.add(
                    "pack/bucket-size",
                    f"fused bucket {i} holds {b.nbytes} bytes "
                    f"(> chunk cap {packing.chunk_bytes})",
                    where=where,
                    hint="only a single oversized tensor may exceed the cap",
                )
            if b.nbytes < 0 or b.num_tensors < 1:
                report.add(
                    "pack/conservation",
                    f"bucket {i} is degenerate ({b.nbytes} bytes, "
                    f"{b.num_tensors} tensors)",
                    where=where,
                )


def _grad_stream(routed: RoutedPlan) -> List[int]:
    return [
        ev.nbytes(1)
        for ev in routed.events("backward")
        if ev.overlappable
    ]


def _check_tapes(routed: RoutedPlan, report: VerificationReport) -> None:
    if not routed._sim_cache:
        return
    from ..simulator.columnar import ColumnarTape, columnar_tape_invariants
    from ..simulator.iteration import tape_invariants

    for cache_key, compiled in routed._sim_cache.items():
        # The cache holds two entry shapes: the replay quadruple under
        # (mesh, cfg) and a ColumnarTape under ("columnar", mesh, cfg) —
        # dispatch on the value, not the key, so a mis-filed entry still
        # gets checked (and fails loudly) rather than unpacking wrong.
        if isinstance(compiled, ColumnarTape):
            rule, problems = (
                "sim/tape-columnar",
                columnar_tape_invariants(routed, compiled),
            )
        else:
            rule, problems = "sim/tape", tape_invariants(routed, compiled)
        for problem in problems:
            report.add(
                rule,
                problem,
                where=f"cache key {cache_key!r}",
                hint="drop the cached tape (clear _sim_cache) and re-simulate",
            )


def verify_routed(
    graph: NodeGraph,
    routed: RoutedPlan,
    mesh: Optional[Mesh] = None,
    config: Optional[CostConfig] = None,
    registry: PatternRegistry = DEFAULT_REGISTRY,
) -> VerificationReport:
    """Statically check a fully elaborated :class:`RoutedPlan`.

    Includes every :func:`verify_plan` rule, then cross-checks the routed
    artifact itself: topological coverage, the independent Algorithm-3
    layout propagation, conversion/event agreement, gradient-sync
    invariants, packing invariants, cost-model sanity (when *mesh* is
    given) and any cached simulation tapes.
    """
    report, layouts = _verify_plan_impl(graph, routed.plan, mesh, registry)
    report.rules_checked += 8

    _check_order(graph, routed, report)
    _check_layouts(routed, layouts, report)
    _check_conversions(graph, routed, report)
    _check_grad_sync(routed, report)
    if mesh is not None:
        _check_cost(routed, mesh, config, report)

    packing = (config.packing if config is not None else None) or PackingConfig()
    stream = _grad_stream(routed)
    _check_packing(stream, pack_gradients(stream, packing), packing, report)
    _check_tapes(routed, report)
    return report


# ---------------------------------------------------------------------------
# verify_rewrite
# ---------------------------------------------------------------------------

def _op_to_node(graph: NodeGraph) -> Dict[str, str]:
    mapping: Dict[str, str] = {}
    for node in graph:
        for op in node.ops:
            mapping[op.name] = node.name
    return mapping


def _parse_comm_name(name: str) -> Optional[Tuple[str, str, str]]:
    """``"{src}/{collective}_to_{layout}"`` → (src, collective, layout)."""
    idx = name.rfind("/")
    if idx < 0:
        return None
    src, tail = name[:idx], name[idx + 1 :]
    if "_to_" not in tail:
        return None
    collective, layout = tail.rsplit("_to_", 1)
    return src, collective, layout


def verify_rewrite(
    graph: NodeGraph,
    routed: RoutedPlan,
    rewrite,
    packing: Optional[PackingConfig] = None,
) -> VerificationReport:
    """Check collective legality of a :class:`RewriteResult`.

    Every resharding edge the cost model priced must carry exactly the
    collective it priced — no dropped, orphan or duplicated comm ops —
    and the gradient buckets must equal a fresh packing of the plan's
    backward stream.
    """
    from ..core.rewrite import COLLECTIVE_TO_OP

    report = VerificationReport(rules_checked=6)
    op_to_node = _op_to_node(graph)
    packing = packing or PackingConfig()

    comm_ops = [op for op in rewrite.graph if op.is_communication]
    #: (producer op, layout) → collectives spliced on that edge
    edges: Dict[Tuple[str, str], List[str]] = {}
    comm_names = set()

    for op in comm_ops:
        comm_names.add(op.name)
        parsed = _parse_comm_name(op.name)
        if parsed is not None and parsed[1] in COLLECTIVE_TO_OP:
            src_op, collective, layout = parsed
            src_node = op_to_node.get(src_op)
            claimed = (
                routed.conversions.get((src_node, layout))
                if src_node is not None
                else None
            )
            if src_node is None or claimed != collective:
                report.add(
                    "rewrite/orphan-comm",
                    f"comm op {op.name!r} splices {collective!r} on "
                    f"({src_op!r}, {layout}) but the plan claims {claimed!r}",
                    where=op.name,
                    hint="the rewritten graph drifted from the routed plan",
                )
            if op.op_type != COLLECTIVE_TO_OP[collective]:
                report.add(
                    "rewrite/orphan-comm",
                    f"comm op {op.name!r} has op_type {op.op_type!r}, "
                    f"expected {COLLECTIVE_TO_OP[collective]!r}",
                    where=op.name,
                )
            edges.setdefault((src_op, layout), []).append(collective)
            continue
        # pattern-level pre-comms: "{node}/{collective}_pre{i}"
        idx = op.name.rfind("/")
        tail = op.name[idx + 1 :] if idx >= 0 else op.name
        node_name = op.name[:idx] if idx >= 0 else ""
        base = tail.rsplit("_pre", 1)[0] if "_pre" in tail else None
        shard = routed.shards.get(node_name)
        pattern_comms = (
            [ev.collective for ev in shard.events
             if ev.phase == "forward" and not ev.src]
            if shard is not None
            else []
        )
        if base is None or base not in pattern_comms:
            report.add(
                "rewrite/orphan-comm",
                f"comm op {op.name!r} matches no conversion claim and no "
                "pattern-level forward collective",
                where=op.name,
                hint="only routed conversions and pattern comms insert "
                "communication ops",
            )

    for key, collectives in edges.items():
        if len(collectives) > 1:
            report.add(
                "rewrite/duplicate-comm",
                f"edge {key} carries {len(collectives)} collectives: "
                f"{collectives}",
                where=key[0],
                hint="one deduplicated conversion per (producer, layout)",
            )

    # dropped collectives: a consumer op reading straight across a node
    # boundary whose conversion the plan priced
    for op in rewrite.graph:
        if op.is_communication:
            continue
        node_name = op_to_node.get(op.name)
        shard = routed.shards.get(node_name) if node_name else None
        if shard is None:
            continue
        for src in op.inputs:
            if src in comm_names:
                continue
            src_node = op_to_node.get(src)
            if src_node is None or src_node == node_name:
                continue
            collective = routed.conversions.get((src_node, shard.input_layout))
            if collective:
                report.add(
                    "rewrite/missing-collective",
                    f"{op.name!r} consumes {src!r} directly, but the plan "
                    f"prices {collective!r} on that edge",
                    where=op.name,
                    hint="the rewriter must splice the collective the cost "
                    "model charged for",
                )

    spliced = sum(1 for op in comm_ops)
    if rewrite.num_comm_ops != spliced:
        report.add(
            "rewrite/count",
            f"rewrite reports {rewrite.num_comm_ops} comm ops; the graph "
            f"contains {spliced}",
        )

    stream = _grad_stream(routed)
    expected = pack_gradients(stream, packing)
    if list(rewrite.gradient_buckets) != list(expected):
        report.add(
            "pack/mismatch",
            f"rewrite carries {len(rewrite.gradient_buckets)} buckets that "
            f"differ from a fresh packing ({len(expected)} buckets)",
            hint="gradient buckets must be reproducible from the plan's "
            "backward stream",
        )
    _check_packing(stream, rewrite.gradient_buckets, packing, report)
    return report


# ---------------------------------------------------------------------------
# plan-cache envelopes (the service's disk store)
# ---------------------------------------------------------------------------

#: full-digest length of the fingerprints an envelope must carry.
_FP_HEX = 64

_FP_NAMES = ("graph", "mesh", "config")


def verify_envelope(doc, expected_key: Optional[str] = None) -> VerificationReport:
    """Structural checks over a decoded plan-cache envelope document.

    The disk cache runs this *before* attempting to deserialise the
    payload: a corrupt or mislabelled blob is quarantined on the spot
    instead of crashing the service mid-request.  These are shape checks
    only — the payload itself is re-verified by the full routed-plan
    rules when it is deserialised against a graph.
    """
    from ..core.serialize import CACHE_ENVELOPE_VERSION, SCHEMA_VERSION

    report = VerificationReport()
    report.rules_checked = 5
    if not isinstance(doc, dict) or doc.get("kind") != "repro.plan_cache_entry":
        kind = doc.get("kind") if isinstance(doc, dict) else type(doc).__name__
        report.add(
            "cache/kind",
            f"document kind is {kind!r}; expected 'repro.plan_cache_entry'",
            hint="quarantine the blob; it is not a cache entry",
        )
        return report  # nothing else is meaningful on a foreign document
    if (
        doc.get("schema") != SCHEMA_VERSION
        or doc.get("envelope") != CACHE_ENVELOPE_VERSION
    ):
        report.add(
            "cache/schema",
            f"envelope is schema={doc.get('schema')!r} "
            f"envelope={doc.get('envelope')!r}; this library reads "
            f"schema={SCHEMA_VERSION} envelope={CACHE_ENVELOPE_VERSION}",
            hint="treat as a miss; a re-search will overwrite the slot",
        )
    key = doc.get("key")
    if not isinstance(key, str) or not key:
        report.add("cache/key", "envelope carries no cache key")
    elif expected_key is not None and key != expected_key:
        report.add(
            "cache/key",
            f"envelope claims key {key!r} but was filed under "
            f"{expected_key!r}",
            hint="a renamed or cross-copied blob; quarantine it",
        )
    fps = doc.get("fingerprints")
    if not isinstance(fps, dict):
        report.add("cache/fingerprint", "envelope carries no fingerprint map")
    else:
        for name in _FP_NAMES:
            digest = fps.get(name)
            if (
                not isinstance(digest, str)
                or len(digest) != _FP_HEX
                or any(c not in "0123456789abcdef" for c in digest)
            ):
                report.add(
                    "cache/fingerprint",
                    f"fingerprint {name!r} is missing or not a "
                    f"{_FP_HEX}-hex digest",
                )
    payload = doc.get("payload")
    if not isinstance(payload, dict) or payload.get("kind") != "repro.routed_plan":
        report.add(
            "cache/payload",
            "envelope payload is not a routed-plan document",
            hint="the full routed-plan rules re-verify the payload on load",
        )
    return report
