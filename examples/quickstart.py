#!/usr/bin/env python
"""Quickstart: derive a tensor-parallel plan for T5 in three lines.

Mirrors the paper's Example 1::

    import tensor_auto_parallel as tap
    mesh = [2, 8]
    tap.auto_parallel(tap.split(mesh))
    model_def()

Run:  python examples/quickstart.py
"""

import repro as tap
from repro.models import TransformerConfig, build_t5
from repro.viz import render_plan


def main() -> None:
    # A scaled-down T5 so the example runs in seconds; swap in
    # ``build_t5()`` for the full T5-large search.
    model = build_t5(
        TransformerConfig(
            name="t5_demo", encoder_layers=4, decoder_layers=4,
            hidden=1024, ffn_dim=4096, num_heads=16, vocab=32128,
        )
    )
    print(f"model: {model.num_parameters() / 1e6:.0f}M parameters, "
          f"{len(model)} operators")

    # Example 1 of the paper: 2 workers x 8 GPUs, on the paper's testbed
    # fabric (PCIe inside a node, 32 Gbps Ethernet between nodes).
    from repro.cluster import paper_testbed
    mesh = paper_testbed(2, 8)
    result = tap.auto_parallel(model, mesh)

    print()
    print(result.describe())
    print()
    print(render_plan(
        result.node_graph, result.plan,
        layer_scopes=["t5_demo/encoder/layer_0", "t5_demo/decoder/layer_0"],
        title="Discovered plan (one block per shared-subgraph family)",
    ))


if __name__ == "__main__":
    main()
