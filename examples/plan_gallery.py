#!/usr/bin/env python
"""A gallery of sharding plans, rendered like the paper's Fig. 14.

Shows the four named strategies (data-parallel, MHA-only, FFN-only,
Megatron) side by side on one transformer layer, with each strategy's
communication cost and simulated step time on the paper testbed — then
lets TAP pick, and verifies the pick numerically on the simulated
multi-device runtime.

Run:  python examples/plan_gallery.py
"""

import numpy as np

from repro.baselines import dp_plan, ffn_only_plan, megatron_plan, mha_only_plan
from repro.cluster import paper_testbed
from repro.core import CostModel, DEFAULT_REGISTRY, coarsen, derive_plan, route_plan
from repro.graph import trim_auxiliary
from repro.models import TransformerConfig, build_t5
from repro.simulator import memory_per_device, simulate_iteration
from repro.viz import format_table, render_layer_grid


def main() -> None:
    model = build_t5(
        TransformerConfig(name="t5", encoder_layers=4, decoder_layers=4,
                          hidden=512, ffn_dim=2048, num_heads=8)
    )
    trimmed, _ = trim_auxiliary(model)
    nodes = coarsen(trimmed)
    mesh = paper_testbed()
    cm = CostModel(mesh)

    plans = {
        "data-parallel": dp_plan(nodes),
        "MHA-only": mha_only_plan(nodes, 8),
        "FFN-only": ffn_only_plan(nodes, 8),
        "Megatron": megatron_plan(nodes, 8),
    }

    print("Fig. 14-style gallery (one encoder layer per plan):\n")
    rows = []
    for name, plan in plans.items():
        routed = route_plan(nodes, plan, DEFAULT_REGISTRY)
        prof = simulate_iteration(routed, mesh)
        mem = memory_per_device(routed, mesh)
        print(f"{name:14s} {render_layer_grid(nodes, plan, 't5/encoder/layer_0')}")
        rows.append([
            name,
            f"{cm.plan_cost(routed) * 1e3:.1f} ms",
            f"{prof.iteration_time * 1e3:.1f} ms",
            f"{mem.total_gb:.2f} GB",
        ])
    print()
    print(format_table(
        ["plan", "comm cost", "simulated step", "mem/device"], rows,
        title="Cost and simulated behaviour on the paper testbed (2x8)",
    ))

    best = derive_plan(nodes, mesh)
    print(f"\nTAP's pick: {best.plan.name} "
          f"({best.candidates_examined} candidates in {best.search_seconds:.1f}s)")
    print(render_layer_grid(nodes, best.plan, "t5/encoder/layer_0"))

    # Numerically verify an FFN-only-style plan on the numpy runtime using
    # a dense stand-in model (the runtime covers the dense op vocabulary).
    from repro.core import ShardingPlan
    from repro.models import GraphBuilder
    from repro.graph import OpType, TensorSpec
    from repro.runtime import ShardedExecutor

    b = GraphBuilder("mlp", emit_auxiliary=False)
    with b.scope("mlp"):
        x = b.input("x", (-1, 64))
        h = x
        for i in range(2):
            with b.scope(f"layer_{i}"):
                n = b.layernorm("norm", h, 64)
                with b.scope("ffn"):
                    inter = b.dense("intermediate", n, 64, 256, activation=OpType.GELU)
                    out = b.dense("output", inter, 256, 64)
                h = b.residual_add("residual", h, out, 64)
    mlp = b.graph
    mlp_trimmed, _ = trim_auxiliary(mlp)
    mlp_nodes = coarsen(mlp_trimmed)
    plan = ShardingPlan.of(
        {
            n.name: ("split_col" if n.name.endswith("intermediate") else "split_row")
            for n in mlp_nodes.weight_nodes()
            if n.name.endswith(("intermediate", "output"))
        },
        tp_degree=4,
    )
    routed = route_plan(mlp_nodes, plan, DEFAULT_REGISTRY)
    ex = ShardedExecutor(mlp_trimmed, mlp_nodes, routed)
    report = ex.check_equivalence(
        {"mlp/x": np.random.default_rng(0).standard_normal((16, 64))}
    )
    print(f"\nnumeric equivalence of the sharded plan: "
          f"{'PASS' if report.equivalent else 'FAIL'} "
          f"(max |err| = {report.max_abs_error:.2e}, "
          f"{report.traffic.total_calls} collectives)")


if __name__ == "__main__":
    main()
