#!/usr/bin/env python
"""Composing TAP with AMP and gradient checkpointing (paper §4.8).

The paper positions TAP as one graph pass among several: automatic mixed
precision and activation recomputation address memory from different
angles and stack with the tensor-parallel plan.  This example derives the
TAP plan for a T5 stack, then layers the two memory passes on top and
reports the per-device footprint at each step.

Run:  python examples/memory_optimizations.py
"""

from repro.cluster import paper_testbed
from repro.core import coarsen, derive_plan
from repro.graph import trim_auxiliary
from repro.models import TransformerConfig, build_t5
from repro.passes import apply_amp, select_recompute_scopes
from repro.simulator import memory_per_device, simulate_iteration
from repro.viz import format_table


def main() -> None:
    mesh = paper_testbed()
    model = build_t5(
        TransformerConfig(name="t5", encoder_layers=8, decoder_layers=8,
                          hidden=1024, ffn_dim=4096, num_heads=16)
    )
    trimmed, _ = trim_auxiliary(model)

    rows = []

    def report(label, graph, extra_master=0, recompute=None):
        ng = coarsen(graph)
        search = derive_plan(ng, mesh)
        mem = memory_per_device(
            search.routed, mesh,
            extra_master_bytes=extra_master, recompute=recompute,
        )
        prof = simulate_iteration(search.routed, mesh, recompute=recompute)
        rows.append([
            label,
            search.plan.describe()[:40],
            f"{mem.weights / (1 << 30):.2f}",
            f"{mem.activations / (1 << 30):.2f}",
            f"{mem.total_gb:.2f}",
            f"{prof.iteration_time * 1e3:.0f} ms",
        ])
        return ng

    report("TAP only (fp32)", trimmed)

    amp = apply_amp(trimmed)
    ng16 = report("TAP + AMP", amp.graph, extra_master=amp.master_weight_bytes)

    policy = select_recompute_scopes(ng16)
    report("TAP + AMP + checkpointing", amp.graph,
           extra_master=amp.master_weight_bytes, recompute=policy)

    print(format_table(
        ["configuration", "plan", "weights (GB)", "activations (GB)",
         "total (GB)", "step"],
        rows,
        title="Memory per device as optimisation passes stack (T5 8+8, 2x8)",
    ))
    print()
    print("Each pass attacks a different term: TAP shards weights, AMP "
          "halves activation and gradient bytes (at the cost of fp32 "
          "masters), checkpointing drops stored activations for ~17% more "
          "backward compute.")


if __name__ == "__main__":
    main()
