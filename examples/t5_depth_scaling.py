#!/usr/bin/env python
"""Depth scaling (paper §3.3, Fig. 3b): search cost stays flat as T5 grows.

Dense transformers scale by stacking identical layers, so TAP's shared-
subgraph pruning keeps the searched block constant while the model grows.
This example sweeps the layer count, runs the full derivation at each
depth, and contrasts the (flat) number of examined candidates with the
(growing) graph size.

Run:  python examples/t5_depth_scaling.py
"""

from repro.cluster import paper_testbed
from repro.core import coarsen, derive_plan
from repro.graph import trim_auxiliary
from repro.models import t5_with_depth
from repro.viz import format_table


def main() -> None:
    mesh = paper_testbed()
    rows = []
    for layers in (2, 6, 12, 24):
        model = t5_with_depth(layers, hidden=512, ffn=2048)
        trimmed, _ = trim_auxiliary(model)
        nodes = coarsen(trimmed)
        result = derive_plan(nodes, mesh)
        sharded = sorted(
            {v for v in result.plan.as_dict.values() if v != "replicate"}
        )
        rows.append([
            layers,
            f"{model.num_parameters() / 1e6:.0f}M",
            len(nodes),
            result.prune.nodes_after,
            result.candidates_examined,
            f"{result.search_seconds:.2f}s",
            ",".join(sharded) or "data-parallel",
        ])
    print(format_table(
        ["layers/stack", "params", "graph nodes", "searched nodes",
         "candidates", "search time", "winning patterns"],
        rows,
        title="TAP search vs. T5 depth (paper testbed, 2x8 GPUs)",
    ))
    print()
    print("Graph nodes grow linearly with depth; the searched block and the "
          "candidate count do not — the sublinearity of Table 2 and Fig. 9.")


if __name__ == "__main__":
    main()
