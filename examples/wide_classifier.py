#!/usr/bin/env python
"""The e-commerce wide-classification scenario (paper §3.3, Fig. 3a).

A ResNet-50 feature extractor (~24M parameters) feeds a classification
layer over hundreds of thousands of merchandise classes; at 100K classes
the FC layer alone holds ~205M parameters — too large for pipeline
parallelism to place, and the motivating case for tensor parallelism.

This example sweeps the class count, shows how the classifier comes to
dominate the model, and lets TAP derive a plan at each width.

Run:  python examples/wide_classifier.py
"""

import repro as tap
from repro.models import resnet_with_classes
from repro.simulator import memory_per_device
from repro.viz import format_table


def main() -> None:
    mesh = tap.split([2, 8])
    rows = []
    for num_classes in (1024, 16384, 100_000):
        model = resnet_with_classes(num_classes)
        fc = next(w for w in model.weights() if "head/fc" in w.name)
        result = tap.auto_parallel(model, mesh, batch_tokens=1024)
        fc_pattern = result.plan.pattern_for(
            next(n.name for n in result.node_graph.weight_nodes()
                 if n.name.endswith("head/fc"))
        )
        mem = memory_per_device(result.routed, mesh, None)
        rows.append([
            num_classes,
            f"{model.num_parameters() / 1e6:.0f}M",
            f"{fc.weight.num_elements / 1e6:.0f}M",
            f"{100 * fc.weight.num_elements / model.num_parameters():.0f}%",
            f"tp={result.tp_degree}",
            fc_pattern,
            f"{mem.total_gb:.2f} GB",
        ])
    print(format_table(
        ["classes", "params", "fc params", "fc share", "plan", "fc pattern",
         "mem/device"],
        rows,
        title="TAP on the wide classifier (batch 1024, mesh 2x8)",
    ))
    print()
    print("The classifier dominates as classes grow; TAP responds by "
          "sharding exactly that layer while the conv trunk stays "
          "data-parallel.")


if __name__ == "__main__":
    main()
