#!/usr/bin/env python
"""Mixture-of-Experts planning: expert parallelism via the SRC abstraction.

MoE layers stack per-expert FFN weights on a leading expert dimension
(paper Table 1: WideNet, V-MoE, Switch, and the §6.5 M6-MoE models).
Under SRC, expert parallelism is simply SPLIT(0) on the stacked weights
with AllToAll dispatch/combine — TAP discovers it like any other pattern.

Run:  python examples/moe_expert_parallel.py
"""

import repro as tap
from repro.models import MoEConfig, build_moe_transformer
from repro.simulator import memory_per_device
from repro.viz import format_table


def main() -> None:
    mesh = tap.split([2, 8])
    rows = []
    for experts in (8, 32, 128):
        model = build_moe_transformer(
            MoEConfig(
                name=f"moe_{experts}e", hidden=512, ffn_dim=2048, num_heads=8,
                num_layers=6, num_experts=experts, moe_every=2,
            )
        )
        result = tap.auto_parallel(model, mesh)
        expert_patterns = {
            v for k, v in result.plan.as_dict.items() if k.endswith("/experts")
        }
        mem = memory_per_device(result.routed, mesh, None)
        rows.append([
            experts,
            f"{model.num_parameters() / 1e6:.0f}M",
            f"tp={result.tp_degree}",
            ",".join(sorted(expert_patterns)) or "replicate",
            f"{mem.total_gb:.2f} GB",
            f"{result.search.search_seconds:.2f}s",
        ])
    print(format_table(
        ["experts", "params", "plan", "expert-weight pattern", "mem/device",
         "search"],
        rows,
        title="TAP on MoE transformers (mesh 2x8)",
    ))
    print()
    print("As experts multiply, the stacked expert weights dwarf the rest "
          "of the model and expert-splitting becomes the discovered plan; "
          "per-device memory stays bounded while total parameters explode — "
          "the mechanism behind the paper's M6-MoE-1T run (§6.5).")


if __name__ == "__main__":
    main()
