"""Analyzer runtime — interprocedural analysis must stay CI-cheap.

``repro verify analyze`` runs on every CI push, so its cost is part of
the development loop: the whole pipeline (index ~100 modules, build the
call graph, propagate purity, run the lockset pass) has a hard 5-second
budget on the repo tree.  This benchmark times the three stages
separately, asserts the budget, and emits ``BENCH_analyze.json`` so the
regression gate catches superlinear creep as the tree grows — the call
graph is the quadratic risk (name dispatch × methods), and a silent
10× there would otherwise surface as "CI got slow" months later.
"""

import time
from pathlib import Path

from repro.verify.analyze import analyze_index, analyze_paths, index_paths
from repro.viz import format_table

from common import emit, emit_bench_json

#: Hard ceiling for the full pipeline over src/repro (CI asserts it too).
BUDGET_S = 5.0

#: Timing repeats per stage — scheduler noise only ever inflates a
#: window, so the min is the honest number (same policy as the search
#: and simulation hot-path benchmarks).
REPEATS = 3

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _measure_once():
    t0 = time.perf_counter()
    index = index_paths([REPO_SRC])
    t_index = time.perf_counter() - t0

    t0 = time.perf_counter()
    diags = analyze_index(index)
    t_passes = time.perf_counter() - t0

    t0 = time.perf_counter()
    analyze_paths([REPO_SRC])
    t_total = time.perf_counter() - t0

    edges = sum(len(v) for v in index.edges.values())
    return {
        "model": "repro_tree",
        "modules": len(index.modules),
        "functions": len(index.functions),
        "call_edges": edges,
        "findings": len(diags),
        "index_s": t_index,
        "passes_s": t_passes,
        "wall_s": t_total,
    }


def measure():
    runs = [_measure_once() for _ in range(REPEATS)]
    rec = dict(runs[0])  # structure counts are identical across runs
    for key in ("index_s", "passes_s", "wall_s"):
        rec[key] = min(r[key] for r in runs)
    return rec


def test_analyze_runtime_budget():
    rec = measure()

    table = format_table(
        ["stage", "value"],
        [
            ["modules indexed", str(rec["modules"])],
            ["functions", str(rec["functions"])],
            ["call edges", str(rec["call_edges"])],
            ["findings", str(rec["findings"])],
            ["index build (s)", f"{rec['index_s']:.3f}"],
            ["purity+locks (s)", f"{rec['passes_s']:.3f}"],
            ["full pipeline (s)", f"{rec['wall_s']:.3f}"],
        ],
        title="interprocedural analyzer over src/repro",
    )
    emit("analyze_runtime", table)
    emit_bench_json("analyze", [rec])

    assert rec["wall_s"] < BUDGET_S, (
        f"analyzer took {rec['wall_s']:.2f}s (budget {BUDGET_S}s) — "
        "check the call-graph dispatch fan-out before raising the budget"
    )
    # the tree really was analyzed, not skipped
    assert rec["modules"] > 40
    assert rec["call_edges"] > 500
