"""Ablation — gradient packing threshold mu (§4.7.1).

Sweeps mu on the data-parallel T5-large plan (the gradient-traffic-heavy
case) and reports bucket counts and gradient-sync time.  Packing's win
comes from amortising per-collective latency; past a point, larger mu
stops helping because bandwidth, not latency, dominates.
"""

from repro.baselines import dp_plan
from repro.core import (
    CostConfig,
    CostModel,
    DEFAULT_REGISTRY,
    PackingConfig,
    route_plan,
)
from repro.models import build_t5
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w

MUS = (0, 1 << 18, 1 << 22, 1 << 25)


def run():
    ng = nodes_for(build_t5())
    mesh = mesh_16w()
    routed = route_plan(ng, dp_plan(ng), DEFAULT_REGISTRY)
    results = []
    # disabled packing baseline
    cm = CostModel(mesh, CostConfig(packing=PackingConfig(enabled=False)))
    bd = cm.estimate(routed)
    results.append(("disabled", bd.num_gradient_buckets, bd.gradient_comm))
    for mu in MUS:
        cfg = CostConfig(
            packing=PackingConfig(mu=mu, chunk_bytes=max(mu, 32 << 20))
        )
        bd = CostModel(mesh, cfg).estimate(routed)
        results.append((f"mu={mu >> 10}KiB", bd.num_gradient_buckets, bd.gradient_comm))
    return results


def test_ablation_packing(run_once):
    results = run_once(run)
    emit(
        "ablation_packing",
        format_table(
            ["packing", "gradient buckets", "gradient sync (ms)"],
            [[name, buckets, f"{t * 1e3:.1f}"] for name, buckets, t in results],
            title="Ablation: gradient packing threshold (DP plan, T5-large, 2x8)",
        ),
    )
    disabled = results[0]
    best = min(results[1:], key=lambda r: r[2])
    # packing reduces bucket count dramatically and sync time measurably
    assert best[1] < disabled[1] / 3
    assert best[2] < disabled[2]
    # bucket count decreases monotonically with mu
    by_mu = [r[1] for r in results[1:]]
    assert all(a >= b for a, b in zip(by_mu, by_mu[1:]))
