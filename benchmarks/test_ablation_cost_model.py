"""Ablation — cost-model design choices (§4.6).

Two knobs the paper's cost model argues for:

* **collective efficiency factors** — AllGather/AllToAll move bytes slower
  than NCCL's AllReduce; pricing them equally misranks plans that rely on
  gathers;
* **objective** — communication cost (the paper) vs. full iteration-time
  estimate; the comm objective prefers the same winner here, showing the
  communication term dominates plan ranking on this testbed.
"""

from repro.baselines import ffn_only_plan, megatron_plan, mha_only_plan
from repro.core import CostConfig, CostModel, DEFAULT_REGISTRY, route_plan
from repro.models import build_t5
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w


def run():
    ng = nodes_for(build_t5())
    mesh = mesh_16w()
    plans = {
        "MHA-only": route_plan(ng, mha_only_plan(ng, 8), DEFAULT_REGISTRY),
        "FFN-only": route_plan(ng, ffn_only_plan(ng, 8), DEFAULT_REGISTRY),
        "Megatron": route_plan(ng, megatron_plan(ng, 8), DEFAULT_REGISTRY),
    }
    variants = {
        "comm + efficiency (paper)": CostConfig(objective="comm"),
        "comm, no efficiency": CostConfig(objective="comm", use_efficiency=False),
        "iteration time": CostConfig(objective="time"),
        "comm, no overlap": CostConfig(objective="comm", overlap_gradients=False),
    }
    table = {}
    for vname, cfg in variants.items():
        cm = CostModel(mesh, cfg)
        table[vname] = {p: cm.plan_cost(r) for p, r in plans.items()}
    return table


def test_ablation_cost_model(run_once):
    table = run_once(run)
    rows = [
        [vname] + [f"{table[vname][p] * 1e3:.1f}" for p in
                   ("MHA-only", "FFN-only", "Megatron")]
        for vname in table
    ]
    emit(
        "ablation_cost_model",
        format_table(
            ["cost model variant", "MHA-only (ms)", "FFN-only (ms)", "Megatron (ms)"],
            rows,
            title="Ablation: cost-model variants ranking the named plans",
        ),
    )
    # under the paper's model, FFN-only wins
    paper = table["comm + efficiency (paper)"]
    assert paper["FFN-only"] < paper["MHA-only"]
    assert paper["FFN-only"] < paper["Megatron"]
    # removing the efficiency factors compresses the MHA/FFN gap (gathers
    # get cheaper), demonstrating the factor matters for ranking margins
    eff_gap = paper["MHA-only"] - paper["FFN-only"]
    no_eff = table["comm, no efficiency"]
    no_eff_gap = no_eff["MHA-only"] - no_eff["FFN-only"]
    assert no_eff_gap < eff_gap
    # disabling gradient overlap raises every plan's cost
    no_overlap = table["comm, no overlap"]
    for p in paper:
        assert no_overlap[p] >= paper[p]
