"""Observability overhead — disabled instrumentation must be free.

The obs layer's contract is "off-cost when disabled": a disabled
``trace.span(...)`` call is one module-flag check returning a shared
no-op context manager, and a disabled ``metrics.counter``/``gauge`` is
one flag check returning ``None``.  This benchmark turns that contract
into a number:

1. microbenchmark the per-call disabled cost of each hook;
2. run one real derivation with a :class:`MemorySink` attached to count
   how many hook invocations the pipeline actually executes (every span
   and metric record is one call site firing);
3. assert ``calls x per-call cost`` is under 2% of the uninstrumented
   derivation's wall time.

The product form is deliberate: a direct A/B timing of two full
derivations differs by scheduler noise larger than the effect being
measured, while the per-call cost times an exact call count is stable
and still an upper bound (the microbenchmark loop inflates per-call
cost with its own loop overhead).
"""

import time

import pytest

from repro import obs
from repro.core import derive_plan
from repro.models import t5_with_depth
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w

#: Hard ceiling on instrumentation cost relative to the hot path.
OVERHEAD_BUDGET = 0.02

#: Microbenchmark iterations — enough that one clock tick is invisible.
CALLS = 200_000


def _per_call(fn) -> float:
    t0 = time.perf_counter()
    for _ in range(CALLS):
        fn()
    return (time.perf_counter() - t0) / CALLS


def measure():
    assert not obs.enabled(), "obs must start disabled"
    span_cost = _per_call(lambda: obs.trace.span("bench", x=1))
    counter_cost = _per_call(lambda: obs.metrics.counter("bench", 1))

    ng = nodes_for(t5_with_depth(24))
    mesh = mesh_16w()

    t0 = time.perf_counter()
    derive_plan(ng, mesh)
    wall = time.perf_counter() - t0

    with obs.capture() as sink:
        derive_plan(ng, mesh)
    spans = len(sink.spans)
    metric_calls = len(sink.metrics)

    budget_used = (spans * span_cost + metric_calls * counter_cost) / wall
    return {
        "span_ns": span_cost * 1e9,
        "counter_ns": counter_cost * 1e9,
        "spans": spans,
        "metrics": metric_calls,
        "wall_s": wall,
        "budget_used": budget_used,
    }


@pytest.mark.slow
def test_disabled_instrumentation_overhead(run_once):
    r = run_once(measure)
    table = format_table(
        ["disabled span (ns)", "disabled counter (ns)", "spans/run",
         "metrics/run", "derivation (s)", "overhead", "budget"],
        [[
            f"{r['span_ns']:.0f}",
            f"{r['counter_ns']:.0f}",
            r["spans"],
            r["metrics"],
            f"{r['wall_s']:.3f}",
            f"{r['budget_used'] * 100:.4f}%",
            f"{OVERHEAD_BUDGET * 100:.0f}%",
        ]],
        title="observability overhead while disabled (t5-24L derivation)",
    )
    emit("obs_overhead", table)

    # the disabled fast path really is the shared no-op singleton
    assert obs.trace.span("a") is obs.trace.span("b")
    assert r["budget_used"] < OVERHEAD_BUDGET, r
