"""Fig. 9 — end-to-end search time, scaling T5 depth.

The paper deepens T5 (a common scaling practice) and compares the wall-
clock to derive a plan: TAP stays under 15 minutes at every size and is
21x–67x faster than Alpa.  We regenerate the sweep with our Alpa-like
comparator on the same graphs; absolute times shrink with the substrate
but the *growth* (TAP flat, Alpa superlinear) and the widening ratio are
the claims under test.

Also reproduces the §6.3.1 anecdote: for T5-large TAP examines 729
candidate plans per transformer family while Alpa shortlists only 16 —
yet TAP finishes orders of magnitude sooner.
"""

import pytest

from repro.baselines import alpa_like_search
from repro.core import derive_plan
from repro.models import t5_with_depth
from repro.viz import format_series, format_table

from common import emit, nodes_for, mesh_16w

DEPTHS = (4, 8, 16, 24)


def sweep():
    mesh = mesh_16w()
    rows = []
    # warm-up outside the timed sweep: the first numpy matmul pays BLAS
    # initialisation and the cost model fills its collective-pricing
    # caches — one-time process costs, not part of either search's growth
    warm = nodes_for(t5_with_depth(2))
    derive_plan(warm, mesh)
    alpa_like_search(warm, mesh, num_candidates=16)
    for depth in DEPTHS:
        model = t5_with_depth(depth)
        ng = nodes_for(model)
        # TAP's search is tens of milliseconds — take the best of three
        # runs so scheduler noise doesn't swamp the flatness comparison
        tap = min(
            (derive_plan(ng, mesh) for _ in range(3)),
            key=lambda r: r.search_seconds,
        )
        alpa = alpa_like_search(ng, mesh, num_candidates=16)
        rows.append(
            {
                "depth": depth,
                "params": model.num_parameters(),
                "tap_seconds": tap.search_seconds,
                "alpa_seconds": alpa.search_seconds,
                "tap_candidates": tap.candidates_examined,
                "alpa_candidates": len(alpa.plans),
            }
        )
    return rows


@pytest.mark.slow
def test_fig09_search_time_t5_depth(run_once):
    rows = run_once(sweep)
    table = format_table(
        ["layers/stack", "params (M)", "TAP (s)", "Alpa-like (s)", "speed-up",
         "TAP cands", "Alpa cands"],
        [
            [
                r["depth"],
                f"{r['params'] / 1e6:.0f}",
                f"{r['tap_seconds']:.2f}",
                f"{r['alpa_seconds']:.2f}",
                f"{r['alpa_seconds'] / r['tap_seconds']:.1f}x",
                r["tap_candidates"],
                r["alpa_candidates"],
            ]
            for r in rows
        ],
        title="Fig. 9: end-to-end search time vs. T5 depth (mesh 2x8)",
    )
    series = "\n".join(
        [
            format_series("tap", [(r["depth"], round(r["tap_seconds"], 2)) for r in rows], "s"),
            format_series("alpa", [(r["depth"], round(r["alpa_seconds"], 2)) for r in rows], "s"),
        ]
    )
    emit("fig09_search_t5", table + "\n" + series)

    # TAP's search is flat in depth (sublinear end to end)
    tap_times = [r["tap_seconds"] for r in rows]
    assert max(tap_times) < 3 * min(tap_times)
    # Alpa's grows superlinearly: deepest / shallowest exceeds the depth ratio
    alpa_ratio = rows[-1]["alpa_seconds"] / rows[0]["alpa_seconds"]
    assert alpa_ratio > (DEPTHS[-1] / DEPTHS[0])
    # the speed-up widens with size toward the paper's regime (21x-67x at
    # the paper's 24-96-layer scales).  Wall-clock ratios vary with machine
    # load, so assert the robust shape: monotone widening across the upper
    # half of the sweep plus a conservative floor at the largest size.
    speedups = [r["alpa_seconds"] / r["tap_seconds"] for r in rows]
    assert speedups[-1] > speedups[-2] > speedups[-3]
    assert speedups[-1] >= 4, speedups
    # §6.3.1: TAP examines hundreds of candidates per family, Alpa 16
    assert rows[-1]["tap_candidates"] >= 729
    assert rows[-1]["alpa_candidates"] <= 16
