"""Planner service throughput: cold vs. warm latency, coalescing, fleet scaling.

Exercises the planner-as-a-service stack end to end, in-process (no
HTTP — the daemon adds transport, not planning):

* **cold vs. warm** — the first request for a key runs a full search;
  every repeat answers from the in-memory LRU.  The warm path must be at
  least ``MIN_WARM_SPEEDUP`` (50x) faster; in practice it is thousands
  of times faster (microseconds vs. ~100 ms).
* **disk tier** — a fresh service over the same cache directory answers
  from disk, *bit-identically*: the re-served envelope's
  ``routed_to_json`` equals the original byte for byte.
* **coalescing** — N threads racing on one uncached key run exactly one
  search; the other N-1 ride the in-flight future (or hit the cache a
  beat later).  Both counts are deterministic and gated.
* **miss throughput** — distinct-key request storms against 1-worker and
  2-worker fleets, best of ``FLEET_REPEATS`` storms per fleet size (a
  single storm is one scheduler hiccup away from a bogus sub-1.0
  scaling figure).  Raw requests/sec are machine-dependent (and
  null-thresholded); the gated number is ``fleet_scaling_margin``, the
  observed scaling normalised by what the machine can physically give
  (``min(workers, cpu_count)``) — so a 1-core CI box and a 16-core
  workstation gate the same invariant: adding workers must not *lose*
  throughput, and must win where cores exist.
"""

import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.service import PlanRequest, PlannerService

from common import emit, emit_bench_json
from repro.viz import format_table

MODEL = "clip_base"
BATCH_TOKENS = 8192

#: Acceptance floor on warm-hit speedup (the issue's 50x).
MIN_WARM_SPEEDUP = 50.0

#: Warm-hit timing repeats (min-of; each is microseconds).
WARM_REPEATS = 20

#: Threads racing one key in the coalescing storm.
STORM = 8

#: Distinct-key misses per fleet configuration.
MISS_KEYS = 4

#: Fraction of ideal core-scaling the fleet must deliver for a full
#: margin; generous because the parent thread does envelope parsing and
#: a 1-core box pays pure oversubscription for the second worker.
SCALING_EFFICIENCY = 0.5

#: Miss-storm repeats per fleet size (best-of; each over a fresh cache
#: dir so every request is a true cold miss).  A single storm over a
#: handful of ~100 ms searches is one scheduler hiccup away from a bogus
#: sub-1.0 scaling figure; load only ever slows a storm down, so the
#: best rps is the honest number.
FLEET_REPEATS = 3


def _request(batch_tokens: int = BATCH_TOKENS) -> PlanRequest:
    return PlanRequest(model=MODEL, mesh_nodes=2, mesh_gpus=8,
                       batch_tokens=batch_tokens)


def _warm_latency(service: PlannerService) -> float:
    best = float("inf")
    for _ in range(WARM_REPEATS):
        response = service.plan(_request())
        assert response.source == "memory"
        best = min(best, response.latency_seconds)
    return best


def _miss_rps_once(workers: int, cache_dir: str) -> float:
    """Requests/sec over MISS_KEYS distinct cold keys on a warm fleet."""
    with PlannerService(cache_dir, workers=workers,
                        queue_limit=MISS_KEYS + STORM) as service:
        # One throwaway search absorbs the fork/start cost of the pool.
        service.plan(_request(1024))
        tokens = [2048 + 512 * i for i in range(MISS_KEYS)]
        with ThreadPoolExecutor(max_workers=MISS_KEYS) as pool:
            t0 = time.perf_counter()
            responses = list(pool.map(
                lambda bt: service.plan(_request(bt), timeout=300), tokens
            ))
            elapsed = time.perf_counter() - t0
        assert all(r.source in ("search", "coalesced") for r in responses)
        assert service.stats()["counters"]["searches"] == MISS_KEYS + 1
    return MISS_KEYS / elapsed


def _miss_rps(workers: int) -> float:
    """Best storm of FLEET_REPEATS, each over its own fresh cache dir."""
    best = 0.0
    for _ in range(FLEET_REPEATS):
        with tempfile.TemporaryDirectory() as cache_dir:
            best = max(best, _miss_rps_once(workers, cache_dir))
    return best


def test_service_throughput():
    cpu = os.cpu_count() or 1

    # --- cold vs. warm vs. disk, all inline (pure planner latency) -------
    with tempfile.TemporaryDirectory() as cache_dir:
        with PlannerService(cache_dir, workers=None) as service:
            cold = service.plan(_request())
            assert cold.source == "search"
            cold_s = cold.latency_seconds
            warm_s = _warm_latency(service)
            warm_envelope = service.plan(_request()).envelope.to_json()
            hit_rate = service.cache.stats.hit_rate

        # a fresh process-equivalent: empty LRU, same disk store
        with PlannerService(cache_dir, workers=None) as service:
            disk = service.plan(_request())
            assert disk.source == "disk"
            disk_s = disk.latency_seconds
            # warm hits are bit-identical across tiers and restarts
            assert disk.envelope.to_json() == warm_envelope

    warm_speedup = cold_s / warm_s
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm hit only {warm_speedup:.0f}x faster than cold search "
        f"(floor {MIN_WARM_SPEEDUP:.0f}x)"
    )

    # --- coalescing storm: one key, STORM threads, one search ------------
    with tempfile.TemporaryDirectory() as cache_dir:
        with PlannerService(cache_dir, workers=None,
                            queue_limit=STORM) as service:
            barrier = threading.Barrier(STORM)
            responses = [None] * STORM

            def storm(i):
                barrier.wait()
                responses[i] = service.plan(_request(), timeout=300)

            threads = [threading.Thread(target=storm, args=(i,))
                       for i in range(STORM)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            counters = service.stats()["counters"]
            assert counters["searches"] == 1, counters
            riders = counters["coalesced"] + \
                service.cache.stats.memory_hits
            assert riders == STORM - 1, counters
            assert len({r.envelope.to_json() for r in responses}) == 1

    # --- miss throughput scaling across fleet sizes -----------------------
    rps_w1 = _miss_rps(1)
    rps_w2 = _miss_rps(2)
    scaling = rps_w2 / rps_w1
    ideal = min(2, cpu)
    scaling_margin = min(1.0, scaling / (SCALING_EFFICIENCY * ideal))

    records = [
        {
            "model": f"{MODEL}@2x8",
            "cold_s": cold_s,
            "warm_s": warm_s,
            "disk_s": disk_s,
            "warm_speedup": warm_speedup,
            "warm_speedup_margin": min(1.0, warm_speedup / MIN_WARM_SPEEDUP),
            "hit_rate": hit_rate,
            "coalesce_searches": 1,
            "coalesce_riders": STORM - 1,
        },
        {
            "model": f"{MODEL}@2x8/fleet",
            "miss_rps_w1": rps_w1,
            "miss_rps_w2": rps_w2,
            "fleet_scaling": scaling,
            "fleet_scaling_margin": scaling_margin,
        },
    ]
    emit_bench_json("service", records)

    table = format_table(
        ["cold (ms)", "warm (us)", "disk (ms)", "speedup",
         "rps w=1", "rps w=2", "scaling", "cores"],
        [[
            f"{cold_s * 1e3:.1f}",
            f"{warm_s * 1e6:.1f}",
            f"{disk_s * 1e3:.1f}",
            f"{warm_speedup:.0f}x",
            f"{rps_w1:.1f}",
            f"{rps_w2:.1f}",
            f"{scaling:.2f}x",
            cpu,
        ]],
        title=f"planner service: {MODEL} on 2x8 (cold search vs. cached)",
    )
    emit("service_throughput", table)
    print(table)
