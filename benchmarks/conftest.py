"""Benchmark-suite configuration: sane single-round defaults.

The experiments are seconds-long, deterministic end-to-end pipelines, not
microbenchmarks — timing them once is representative, and re-running a
multi-minute search five times would make the harness needlessly slow.
"""

import pytest


def pytest_terminal_summary(terminalreporter):
    """Print every regenerated table/figure after the test summary.

    Benchmarks archive their artifacts via :func:`common.emit`; pytest's
    fd-level capture hides in-test prints, so the harness replays them
    here — this is what lands in ``bench_output.txt``.
    """
    from common import EMITTED

    if not EMITTED:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "regenerated paper tables and figures")
    for name, text in EMITTED:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture
def run_once(benchmark):
    """A benchmark runner that executes the workload exactly once."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return run
