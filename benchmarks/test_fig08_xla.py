"""Fig. 8 — training time per iteration with XLA enabled.

The paper enables XLA's kernel fusion on TAP-parallelised ResNet-50 models
of varying class counts and finds the improvement inconsistent (and for T5
between −9% and +1%), blaming the communication operators TAP inserts for
breaking XLA's operator clustering.

We regenerate this with the fusion pass of :mod:`repro.simulator.fusion`:
fusing the clean single-device graph is a consistent win; fusing the
rewritten parallel graph is not, because clusters now block collectives.
"""

import repro as tap
from repro.graph import trim_auxiliary
from repro.models import resnet_with_classes, t5_with_depth
from repro.simulator import fuse_graph, fused_iteration_time, simulate_iteration
from repro.viz import format_table

from common import emit, mesh_16w

CLASS_COUNTS = (1024, 8192, 32768, 100_000)


def sweep():
    mesh = mesh_16w()
    rows = []
    gains = []
    for classes in CLASS_COUNTS:
        model = resnet_with_classes(classes)
        clean, _ = trim_auxiliary(model)
        result = tap.auto_parallel(model, mesh, batch_tokens=1024)
        base = simulate_iteration(result.routed, mesh).iteration_time
        with_xla = fused_iteration_time(result.graph, base)
        gain = (base - with_xla) / base
        gains.append(gain)
        clean_gain = (base - fused_iteration_time(clean, base)) / base
        report = fuse_graph(result.graph)
        rows.append(
            [
                classes,
                f"{base * 1e3:.1f}",
                f"{with_xla * 1e3:.1f}",
                f"{100 * gain:+.2f}%",
                f"{100 * clean_gain:+.2f}%",
                report.blocked_comm_ops,
            ]
        )
    return rows, gains


def test_fig08_xla_inconsistent_gains(run_once):
    rows, gains = run_once(sweep)
    emit(
        "fig08_xla",
        format_table(
            ["classes", "no-XLA (ms)", "XLA (ms)", "XLA gain (parallel)",
             "XLA gain (clean graph)", "blocked comms"],
            rows,
            title="Fig. 8: XLA fusion on TAP-rewritten ResNet-50",
        ),
    )
    # the paper's band: per-model gain between -9% and +1%
    assert all(-0.09 <= g <= 0.01 for g in gains), gains


def test_fig08_t5_band(run_once):
    """The T5 counterpart: gains stay within the paper's -9%..+1% band."""

    def t5_gains():
        mesh = mesh_16w()
        out = []
        for depth in (2, 4):
            model = t5_with_depth(depth, hidden=512, ffn=2048)
            result = tap.auto_parallel(model, mesh)
            base = simulate_iteration(result.routed, mesh).iteration_time
            with_xla = fused_iteration_time(result.graph, base)
            out.append((base - with_xla) / base)
        return out

    gains = run_once(t5_gains)
    assert all(-0.09 <= g <= 0.01 for g in gains), gains
