"""Run every figure/table benchmark and refresh ``benchmarks/results/``.

One subprocess per benchmark file (their pytest sessions are independent
and some pin process-global caches), printing the per-benchmark runtime
and a final summary.  This is the one-command regeneration of every
artifact EXPERIMENTS.md cites:

    PYTHONPATH=src python benchmarks/run_all.py [-k pattern]

``--update-baselines`` additionally normalises the ``BENCH_*.json``
files the run produced and refreshes ``benchmarks/baselines/`` — the
metrics ``repro bench compare`` gates CI against.  To avoid silently
clobbering baseline edits you have not committed yet, the refresh
refuses to start while ``benchmarks/baselines/`` is dirty unless
``--force`` is given.

Exit status is non-zero if any benchmark fails.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent


def discover() -> list:
    return sorted(BENCH_DIR.glob("test_*.py"))


def dirty_baselines() -> list:
    """Uncommitted changes under ``benchmarks/baselines/``, as porcelain lines.

    Outside a git checkout (or without git on PATH) there is nothing to
    clobber-check against, so the answer is "clean".
    """
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--", "benchmarks/baselines/"],
            cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True,
        )
    except OSError:
        return []
    if proc.returncode != 0:
        return []
    return [line for line in proc.stdout.splitlines() if line.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-k", default="", help="only run benchmark files whose name contains this"
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="refresh benchmarks/baselines/ from this run's BENCH_*.json",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="allow --update-baselines to overwrite uncommitted baseline edits",
    )
    args = parser.parse_args(argv)

    if args.update_baselines and not args.force:
        dirty = dirty_baselines()
        if dirty:
            print("refusing --update-baselines: benchmarks/baselines/ has "
                  "uncommitted changes (commit or stash them, or pass --force):")
            for line in dirty:
                print(f"  {line}")
            return 2

    files = [f for f in discover() if args.k in f.name]
    if not files:
        print(f"no benchmark files match {args.k!r}")
        return 2

    env_path = f"{REPO_ROOT / 'src'}"
    results = []
    total0 = time.perf_counter()
    for f in files:
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
             f.name],
            cwd=BENCH_DIR,
            env={
                **__import__("os").environ,
                "PYTHONPATH": f"{env_path}:{BENCH_DIR}",
            },
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        dt = time.perf_counter() - t0
        ok = proc.returncode == 0
        results.append((f.name, dt, ok))
        print(f"{'ok  ' if ok else 'FAIL'}  {f.name:42s}  {dt:7.1f}s")
        if not ok:
            print(proc.stdout)
    total = time.perf_counter() - total0

    print()
    width = max(len(name) for name, _, _ in results)
    print(f"{'benchmark':{width}s}  {'time':>8s}  status")
    print(f"{'-' * width}  {'-' * 8}  ------")
    for name, dt, ok in results:
        print(f"{name:{width}s}  {dt:7.1f}s  {'pass' if ok else 'FAIL'}")
    print(f"{'-' * width}  {'-' * 8}  ------")
    failed = [name for name, _, ok in results if not ok]
    print(f"{len(results) - len(failed)}/{len(results)} benchmarks passed "
          f"in {total:.1f}s; results refreshed under benchmarks/results/")
    if failed:
        print("failed:", ", ".join(failed))
        return 1
    if args.update_baselines:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.obs import regress

        metrics = regress.load_bench_files(REPO_ROOT)
        if not metrics:
            print("no BENCH_*.json files at the repo root; nothing to record")
            return 1
        written = regress.write_baselines(
            regress.split_by_suite(metrics), BENCH_DIR / "baselines"
        )
        print(f"baselines refreshed: {', '.join(str(p) for p in written)}")
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            doc = json.loads(path.read_text())
            meta = doc.get("meta", {}) if isinstance(doc, dict) else {}
            print(f"  {path.name}: sha={meta.get('git_sha', '?')} "
                  f"engine={meta.get('engine', '?')} "
                  f"created={meta.get('created', '?')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
