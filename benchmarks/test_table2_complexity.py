"""Table 2 — complexities of auto model-parallel frameworks.

The paper's table is analytical; here we regenerate its *empirical*
counterpart: how each framework's work grows as the same T5 architecture
deepens.  FlexFlow-like work is trials x O(V+E), Alpa-like work is the DP
state count plus intra-op cost queries, TAP's is candidates routed over a
constant-size block.  Growth ratios demonstrate each complexity class.

Also checks the §4.2 claim: the GraphNode IR collapses the T5-large graph
to the order of its weight-variable count.
"""

from repro.baselines import alpa_like_search, flexflow_like_search
from repro.core import derive_plan
from repro.graph import trim_auxiliary
from repro.core import coarsen
from repro.models import build_t5, t5_with_depth
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w

DEPTHS = (2, 4, 8)
HIDDEN, FFN = 256, 1024


def small_t5(depth):
    from repro.models import TransformerConfig

    return build_t5(
        TransformerConfig(
            name=f"t5_{depth}", hidden=HIDDEN, ffn_dim=FFN, num_heads=4,
            vocab=512, encoder_layers=depth, decoder_layers=depth,
        )
    )


def measure():
    mesh = mesh_16w()
    rows = []
    for depth in DEPTHS:
        ng = nodes_for(small_t5(depth))
        V, E = len(ng), ng.num_edges
        tap = derive_plan(ng, mesh)
        alpa = alpa_like_search(ng, mesh, profile=False, num_candidates=8)
        ff = flexflow_like_search(ng, mesh, budget=60, seed=0)
        rows.append(
            [
                depth,
                V,
                E,
                ff.trials * (V + E),             # FlexFlow: O(B(V+E))
                alpa.dp_states_evaluated + alpa.intra_choices_evaluated,
                tap.candidates_examined,         # TAP: constant in depth
            ]
        )
    return rows


def test_table2_empirical_complexity(run_once):
    rows = run_once(measure)
    emit(
        "table2_complexity",
        format_table(
            ["layers", "V", "E", "flexflow work", "alpa work", "tap candidates"],
            rows,
            title="Table 2 (empirical): search work vs. model depth",
        ),
    )
    first, last = rows[0], rows[-1]
    depth_ratio = last[0] / first[0]
    # FlexFlow and Alpa work grow at least linearly / superlinearly with V
    assert last[3] / first[3] >= depth_ratio * 0.8
    assert last[4] / first[4] >= depth_ratio
    # TAP's examined candidates are depth-invariant (sublinear end to end)
    assert last[5] == first[5]


def test_table2_graphnode_compression(run_once):
    """§4.2: T5-large's 60k-op TF graph reduces to ~1015 weight variables;
    our tracer's graph shows the same collapse ratio into GraphNodes."""

    def check():
        graph = build_t5()  # T5-large defaults
        trimmed, _ = trim_auxiliary(graph)
        ng = coarsen(trimmed)
        return len(graph), len(trimmed), len(ng), len(ng.weight_nodes())

    total_ops, compute_ops, nodes, weight_nodes = run_once(check)
    emit(
        "table2_graphnode_ir",
        format_table(
            ["ops (with aux)", "compute ops", "GraphNodes", "weight nodes"],
            [[total_ops, compute_ops, nodes, weight_nodes]],
            title="§4.2: GraphNode IR compression on T5-large",
        ),
    )
    assert nodes < compute_ops
    # the coarse graph is within 2x of the weight-variable count
    assert nodes <= 2 * weight_nodes
