"""Fig. 14 — visualisation of discovered sharding plans for T5.

Renders the four plan archetypes the paper plots (Megatron-style fully
sharded, MHA-only, FFN-only, data-parallel) plus the plan TAP actually
discovers, each as a row of per-variable cells.  Checks the figure's
observations: embeddings and layernorms stay replicated in every
discovered plan, and the best plan on the experiment system is FFN-only.
"""

from repro.baselines import dp_plan, ffn_only_plan, megatron_plan, mha_only_plan
from repro.core import derive_plan
from repro.models import build_t5
from repro.viz import render_plan

from common import emit, nodes_for, mesh_16w


def render_all():
    ng = nodes_for(build_t5())
    mesh = mesh_16w()
    tap = derive_plan(ng, mesh)
    sections = []
    for title, plan in (
        ("Data parallel", dp_plan(ng)),
        ("MHA-only", mha_only_plan(ng, 8)),
        ("FFN-only", ffn_only_plan(ng, 8)),
        ("Megatron", megatron_plan(ng, 8)),
        ("TAP discovered (best)", tap.plan),
    ):
        sections.append(
            render_plan(
                ng, plan,
                layer_scopes=["t5/encoder/layer_0", "t5/decoder/layer_0"],
                title=title,
            )
        )
    return ng, tap, "\n\n".join(sections)


def test_fig14_plan_gallery(run_once):
    ng, tap, text = run_once(render_all)
    emit("fig14_plans", text)

    assignment = tap.plan.as_dict
    # layernorms replicated in the discovered plan (paper's observation)
    norm_nodes = [n.name for n in ng.weight_nodes() if n.name.endswith("norm")]
    assert all(assignment.get(n, "replicate") == "replicate" for n in norm_nodes)
    # within transformer layers, the winner shards exactly the FFN pair
    layer_sharded = {
        k: v for k, v in assignment.items()
        if v != "replicate" and "/layer_" in k
    }
    assert layer_sharded
    assert all("ffn/" in k for k in layer_sharded)
    assert {v for v in layer_sharded.values()} == {"split_col", "split_row"}
