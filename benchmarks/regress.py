"""Benchmark regression gate — thin CLI over :mod:`repro.obs.regress`.

Standalone entry point for running the gate without an installed
package::

    PYTHONPATH=src python benchmarks/regress.py \
        --baseline benchmarks/baselines [--current .] [--threshold 0.2]

``repro bench compare`` is the same harness behind the installed CLI;
both exit non-zero when any metric regressed past its threshold (or
vanished from the current run), printing a per-metric delta table.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import regress  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(REPO_ROOT / "benchmarks" / "baselines"),
                        help="directory of recorded baseline metrics")
    parser.add_argument("--current", default=str(REPO_ROOT),
                        help="directory holding this run's BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=regress.DEFAULT_THRESHOLD,
                        help="default relative regression threshold")
    parser.add_argument("--report", metavar="FILE",
                        help="also write the delta table to this file")
    args = parser.parse_args(argv)

    try:
        baseline = regress.load_baselines(args.baseline)
    except FileNotFoundError as exc:
        print(f"bench compare: {exc}")
        return 2
    current = regress.load_bench_files(args.current)
    result = regress.compare(
        current,
        baseline,
        default_threshold=args.threshold,
        overrides=regress.load_thresholds(args.baseline),
    )
    table = regress.format_delta_table(result)
    print(table)
    if args.report:
        Path(args.report).write_text(table + "\n")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
