"""Fig. 11 — training time per iteration for T5 (batch size 16).

The paper plots iteration time of the best TAP plan against the candidate
plans Alpa produced, as T5 deepens.  Two claims are checked:

* Alpa's pipeline plans, which communicate less, achieve somewhat higher
  throughput than TAP's tensor plans (the paper concedes this);
* Alpa's candidates vary widely (the blue band), while TAP emits a single
  deterministic plan per model.
"""

import statistics

from repro.baselines import alpa_like_search
from repro.core import derive_plan
from repro.models import t5_with_depth
from repro.simulator import simulate_iteration
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w

DEPTHS = (4, 8, 16)


def sweep():
    mesh = mesh_16w()
    rows = []
    for depth in DEPTHS:
        ng = nodes_for(t5_with_depth(depth))
        tap = derive_plan(ng, mesh)
        tap_iter = simulate_iteration(tap.routed, mesh).iteration_time
        alpa = alpa_like_search(ng, mesh, num_candidates=12, profile=False)
        times = alpa.iteration_times
        rows.append(
            {
                "depth": depth,
                "tap": tap_iter,
                "alpa_best": min(times),
                "alpa_mean": statistics.mean(times),
                "alpa_std": statistics.pstdev(times),
            }
        )
    return rows


def test_fig11_t5_iteration_time(run_once):
    rows = run_once(sweep)
    emit(
        "fig11_t5_iter",
        format_table(
            ["layers/stack", "TAP (ms)", "Alpa best (ms)", "Alpa mean (ms)",
             "Alpa std (ms)"],
            [
                [
                    r["depth"],
                    f"{r['tap'] * 1e3:.0f}",
                    f"{r['alpa_best'] * 1e3:.0f}",
                    f"{r['alpa_mean'] * 1e3:.0f}",
                    f"{r['alpa_std'] * 1e3:.0f}",
                ]
                for r in rows
            ],
            title="Fig. 11: training time per iteration, T5 (batch 16)",
        ),
    )
    for r in rows:
        # pipeline's best candidate communicates less and edges out TAP
        assert r["alpa_best"] < r["tap"], r
        # but Alpa's candidate spread is wide (the figure's blue band);
        # TAP outputs one deterministic plan (footnote 2: a single line)
        assert r["alpa_std"] > 0.05 * r["alpa_best"], r
    # iteration time grows with depth for both systems
    assert rows[-1]["tap"] > rows[0]["tap"]
    assert rows[-1]["alpa_best"] > rows[0]["alpa_best"]
