"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it computes
the rows/series, prints them straight to the terminal (bypassing pytest's
capture so they land in ``bench_output.txt``), and archives them under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.cluster import paper_testbed
from repro.core import coarsen
from repro.graph import trim_auxiliary

RESULTS_DIR = Path(__file__).parent / "results"

#: Artifacts emitted during this session, printed by the terminal-summary
#: hook in conftest.py (pytest's fd-level capture swallows direct writes).
EMITTED: list = []


def emit(name: str, text: str) -> None:
    """Archive a regenerated artifact and queue it for the session summary."""
    EMITTED.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_bench_json(name: str, records: list) -> None:
    """Write ``BENCH_<name>.json`` at the repo root.

    The machine-readable companion to :func:`emit`: each record carries a
    ``model``, the reference and optimized wall-clocks in seconds, and the
    resulting speed-up, so external tooling can track the hot-path ratios
    without parsing the archived tables.
    """
    path = Path(__file__).parent.parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(records, indent=2) + "\n")


def nodes_for(graph):
    """trim + coarsen — the standard preprocessing before planning."""
    trimmed, _ = trim_auxiliary(graph)
    return coarsen(trimmed)


def mesh_16w():
    """The paper's two-node evaluation system (§6.1)."""
    return paper_testbed(2, 8)


def mesh_8w():
    """The single-node variant used by Fig. 6's 8w columns."""
    return paper_testbed(1, 8)
