"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it computes
the rows/series, prints them straight to the terminal (bypassing pytest's
capture so they land in ``bench_output.txt``), and archives them under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.cluster import paper_testbed
from repro.core import coarsen
from repro.graph import trim_auxiliary

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: Artifacts emitted during this session, printed by the terminal-summary
#: hook in conftest.py (pytest's fd-level capture swallows direct writes).
EMITTED: list = []


def emit(name: str, text: str) -> None:
    """Archive a regenerated artifact and queue it for the session summary."""
    EMITTED.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def git_sha() -> str:
    """Short SHA of the benchmarked tree; ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def bench_metadata(engine: str = "engine") -> dict:
    """Provenance stamped into every ``BENCH_*.json``.

    A bench number without its SHA, tier and timestamp cannot be compared
    to anything later; the regression gate carries records either bare
    (legacy) or wrapped with this meta block.
    """
    return {
        "git_sha": git_sha(),
        "engine": engine,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def emit_bench_json(name: str, records: list, engine: str = "engine") -> None:
    """Write ``BENCH_<name>.json`` at the repo root.

    The machine-readable companion to :func:`emit`: a ``meta`` block
    (git SHA, engine tier, ISO-8601 timestamp — see :func:`bench_metadata`)
    over the record list.  Each record carries a ``model``, the wall-clocks
    in seconds, and derived ratios, so external tooling can track the
    hot-path numbers without parsing the archived tables.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    doc = {"meta": bench_metadata(engine), "records": records}
    path.write_text(json.dumps(doc, indent=2) + "\n")


def nodes_for(graph):
    """trim + coarsen — the standard preprocessing before planning."""
    trimmed, _ = trim_auxiliary(graph)
    return coarsen(trimmed)


def mesh_16w():
    """The paper's two-node evaluation system (§6.1)."""
    return paper_testbed(2, 8)


def mesh_8w():
    """The single-node variant used by Fig. 6's 8w columns."""
    return paper_testbed(1, 8)
