"""Ablation — the discovered plan depends on the interconnect fabric.

The paper's §6.4.2 finding (FFN-only wins) is a property of *their*
testbed; it observes "when GPU resource is abundant" the trade-offs
shift.  This ablation sweeps the intra-node fabric from PCIe-class to
NVLink-class bandwidth on the same two-node mesh and shows the discovered
plan migrating from data parallelism through FFN-only sharding to
sharding every projection — the crossovers the cost model encodes.
"""

from repro.cluster import GB, Interconnect, Mesh, V100_PCIE_ETHERNET
from repro.core import coarsen, derive_plan
from repro.graph import trim_auxiliary
from repro.models import TransformerConfig, build_t5
from repro.viz import format_table

from common import emit

FABRICS = {
    "ethernet-only (4 GB/s)": Interconnect(bandwidth=4 * GB, latency=30e-6),
    "pcie effective (6 GB/s)": Interconnect(bandwidth=6 * GB, latency=8e-6),
    "pcie line rate (12 GB/s)": Interconnect(bandwidth=12 * GB, latency=8e-6),
    "nvlink (48 GB/s)": Interconnect(bandwidth=48 * GB, latency=6e-6),
    "nvswitch (200 GB/s)": Interconnect(bandwidth=200 * GB, latency=4e-6),
}


def classify(plan) -> str:
    sharded = {k: v for k, v in plan.as_dict.items() if v != "replicate"}
    layer = {k for k in sharded if "/layer_" in k}
    if not sharded:
        return "data parallel"
    kinds = {k.rsplit("/", 2)[-2] for k in layer}
    if layer and kinds <= {"ffn"}:
        return "FFN-only"
    if layer and kinds <= {"mha", "cross_mha"}:
        return "MHA-only"
    if layer:
        return "fully sharded"
    return "embeddings/head only"


def sweep():
    ng = coarsen(trim_auxiliary(
        build_t5(TransformerConfig(encoder_layers=4, decoder_layers=4))
    )[0])
    rows = []
    plans = []
    for name, intra in FABRICS.items():
        mesh = Mesh(2, 8, intra=intra, inter=V100_PCIE_ETHERNET["inter"])
        result = derive_plan(ng, mesh)
        kind = classify(result.plan)
        plans.append((name, kind, result))
        rows.append([
            name, f"tp={result.tp_degree}", kind,
            f"{result.cost * 1e3:.1f}",
        ])
    return rows, plans


def test_ablation_fabric_dependence(run_once):
    rows, plans = run_once(sweep)
    emit(
        "ablation_fabric",
        format_table(
            ["intra-node fabric", "degree", "discovered plan", "cost (ms)"],
            rows,
            title="Ablation: discovered plan vs. intra-node fabric (T5, 2x8)",
        ),
    )
    kinds = [k for _, k, _ in plans]
    # slow fabrics keep layer activations local: at most the FFN pair (or
    # only the gradient-heavy embeddings) shards
    assert kinds[0] in ("data parallel", "embeddings/head only", "FFN-only")
    # ...the paper's PCIe testbed lands on FFN-only (§6.4.2)...
    assert kinds[1] == "FFN-only"
    # ...and fast fabrics justify sharding beyond the FFN
    assert kinds[-1] in ("fully sharded", "MHA-only")
    # more sharding as bandwidth rises: monotone non-decreasing shard count
    counts = [p.plan.num_sharded for _, _, p in plans]
    assert all(a <= b for a, b in zip(counts, counts[1:])), counts
