"""Simulation hot path — segment replay and the columnar tier vs. reference.

Times `simulate_iteration` across its three tiers.  The legacy pair
(48-layer T5, 100K-class ResNet) stresses replay vs. the reference
event loop including replay's cold compile; the large zoo presets
(96-layer T5, 300K-class ResNet, deep MoE) stress all three tiers
*warm* — the sweep regime where one routed plan is priced over and
over and the columnar prefix-sum replay amortises its compile.  A
final record times `simulate_batch` pricing every named baseline plan
of the deep T5 in one padded cumsum against the equivalent sequence of
warm replay calls — the what-if/`POST /simulate` shape.

Every fast path must be a pure accelerator: profiles and the complete
engine task logs (names, starts, durations — every bit) are asserted
identical to the reference before any timing is trusted.
"""

import time
import tracemalloc

import pytest

from repro.baselines import NAMED_PLANS
from repro.core import CostConfig, DEFAULT_REGISTRY, derive_plan, route_plan
from repro.models import build_preset, resnet_with_classes, t5_with_depth
from repro.viz import format_table

from common import emit, emit_bench_json, nodes_for, mesh_16w

MODELS = (
    ("t5-48L", lambda: t5_with_depth(48), None),
    ("resnet-100K", lambda: resnet_with_classes(100_000),
     CostConfig(batch_tokens=1024)),
)

#: Large zoo presets for the three-tier warm sweep (label, preset name).
LARGE_MODELS = (
    ("t5-96L", "t5_96l"),
    ("resnet-300K", "resnet_300k"),
    ("moe-deep", "moe_deep"),
)

#: Floor on warm replay vs. columnar wall clock on the deep-stack preset
#: the columnar tier targets (t5-96L typically lands 30x-60x warm).  The
#: small presets are recorded but not floored here: a 74-node ResNet
#: timeline is microseconds on either tier.
MIN_COLUMNAR_SPEEDUP = 8.0

#: Floor on N sequential warm replay calls vs. one `simulate_batch` of
#: the same N plans (typically lands well above 10x).
MIN_BATCH_SPEEDUP = 3.0

#: Simulation rounds per path — the repeated-pricing pattern of the
#: figure sweeps.  The replay timing includes its cold compile (the
#: plan's tape cache is cleared first), so round 1 pays full price.
ROUNDS = 30

#: Floor on reference vs. replay wall clock.  Replay typically lands at
#: 5x-7x warm; the floor is conservative so the assertion stays robust
#: under machine load (a loaded 1-core runner measures ~3.8x on windows
#: of a few milliseconds — the regression gate tracks the real value).
MIN_SPEEDUP = 3.5


def _logs(prof):
    """Channel logs as plain tuples: (channel, task name, start, duration)."""
    out = {}
    for ch in prof.engine.channels:
        out[ch.name] = (
            [(t.name, t.start, t.duration) for t in ch.log],
            ch.free_at,
        )
    return out


def _time_rounds(routed, mesh, cfg, reference):
    """Wall-clock of ROUNDS simulations; replay re-pays its cold compile."""
    from repro.simulator import simulate_iteration

    if not reference:
        routed._sim_cache.clear()
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        simulate_iteration(routed, mesh, cfg, reference=reference)
    return time.perf_counter() - t0


def _time_warm(routed, mesh, cfg, tier):
    """Wall-clock of ROUNDS warm simulations on *tier* (tapes precompiled)."""
    from repro.simulator import simulate_iteration

    simulate_iteration(routed, mesh, cfg, engine=tier)  # compile untimed
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        simulate_iteration(routed, mesh, cfg, engine=tier)
    return time.perf_counter() - t0


def _assert_parity(label, routed, mesh, cfg):
    """All three tiers must agree bit-for-bit before timing is trusted."""
    from repro.simulator import simulate_iteration

    ref = simulate_iteration(routed, mesh, cfg, engine="reference")
    routed._sim_cache.clear()
    rep = simulate_iteration(routed, mesh, cfg, engine="replay")
    col = simulate_iteration(routed, mesh, cfg, engine="columnar")
    assert rep.as_dict() == ref.as_dict(), label
    assert col.as_dict() == ref.as_dict(), label
    ref_logs = _logs(ref)
    assert _logs(rep) == ref_logs, label
    assert _logs(col) == ref_logs, label


def large_sweep():
    """Three-tier warm timings + columnar peak memory on the large zoo."""
    mesh = mesh_16w()
    cfg = CostConfig()
    rows = []
    for label, preset in LARGE_MODELS:
        ng = nodes_for(build_preset(preset))
        plan = NAMED_PLANS["megatron"](ng, mesh.gpus_per_node)
        routed = route_plan(ng, plan, DEFAULT_REGISTRY)
        _assert_parity(label, routed, mesh, cfg)

        t_ref = min(_time_warm(routed, mesh, cfg, "reference")
                    for _ in range(3))
        t_rep = min(_time_warm(routed, mesh, cfg, "replay")
                    for _ in range(3))
        t_col = min(_time_warm(routed, mesh, cfg, "columnar")
                    for _ in range(3))

        # peak tracked memory of one cold columnar compile + simulate,
        # outside the timing windows
        from repro.simulator import simulate_iteration

        routed._sim_cache.clear()
        tracemalloc.start()
        prof = simulate_iteration(routed, mesh, cfg, engine="columnar")
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        rows.append(
            {
                "model": label,
                "engine": "columnar",
                "nodes": len(routed.order),
                "reference_s": t_ref,
                "replay_s": t_rep,
                "columnar_s": t_col,
                "speedup_over_replay": t_rep / t_col,
                "segments": prof.segments_detected,
                "peak_mem_mb": peak / 2**20,
            }
        )
    return rows


def batch_sweep():
    """One `simulate_batch` over every named plan vs. N sequential replays."""
    from repro.simulator import simulate_batch, simulate_iteration

    mesh = mesh_16w()
    cfg = CostConfig()
    ng = nodes_for(build_preset("t5_96l"))
    routed_plans = [
        route_plan(ng, builder(ng, mesh.gpus_per_node), DEFAULT_REGISTRY)
        for builder in NAMED_PLANS.values()
    ]
    # parity: the batch must equal per-plan replay, plan for plan
    batch_profs = simulate_batch(routed_plans, mesh, cfg)
    for routed, prof in zip(routed_plans, batch_profs):
        rep = simulate_iteration(routed, mesh, cfg, engine="replay")
        assert prof.as_dict() == rep.as_dict()
        assert _logs(prof) == _logs(rep)

    def seq():
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            for routed in routed_plans:
                simulate_iteration(routed, mesh, cfg, engine="replay")
        return time.perf_counter() - t0

    def batched():
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            simulate_batch(routed_plans, mesh, cfg)
        return time.perf_counter() - t0

    t_seq = min(seq() for _ in range(3))
    t_batch = min(batched() for _ in range(3))
    return {
        "model": "batch-t5-96L",
        "engine": "columnar",
        "plans": len(routed_plans),
        "sequential_replay_s": t_seq,
        "batch_s": t_batch,
        "batch_speedup": t_seq / t_batch,
    }


def sweep():
    mesh = mesh_16w()
    rows = []
    for label, build, cfg in MODELS:
        ng = nodes_for(build())
        search = derive_plan(ng, mesh, cost_config=cfg)
        routed = search.routed
        from repro.simulator import simulate_iteration

        # -- bit-exactness first: profile and full task log, both paths --
        ref_prof = simulate_iteration(routed, mesh, cfg, reference=True)
        routed._sim_cache.clear()
        rep_prof = simulate_iteration(routed, mesh, cfg)
        assert rep_prof.as_dict() == ref_prof.as_dict(), label
        assert _logs(rep_prof) == _logs(ref_prof), label

        # best of three timing windows per path — scheduler noise only
        # ever inflates a window, so the min is the honest number
        t_ref = min(_time_rounds(routed, mesh, cfg, True) for _ in range(3))
        t_rep = min(_time_rounds(routed, mesh, cfg, False) for _ in range(3))
        if t_ref / t_rep < MIN_SPEEDUP:
            # transient load can still inflate all three windows of one
            # path (resnet's replay window is ~2 ms); one re-measure
            # separates a busy box from a real regression
            t_ref = min(t_ref,
                        *(_time_rounds(routed, mesh, cfg, True)
                          for _ in range(3)))
            t_rep = min(t_rep,
                        *(_time_rounds(routed, mesh, cfg, False)
                          for _ in range(3)))

        # peak tracked memory of one cold replay (compile + run), measured
        # outside the timing windows
        routed._sim_cache.clear()
        tracemalloc.start()
        simulate_iteration(routed, mesh, cfg)
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        rows.append(
            {
                "model": label,
                "nodes": len(routed.order),
                "ref_seconds": t_ref,
                "rep_seconds": t_rep,
                "segments": rep_prof.segments_detected,
                "replayed": rep_prof.nodes_replayed,
                "peak_mem_mb": peak / 2**20,
            }
        )
    return rows


#: Sweeps are shared between the two tests; the columnar test emits the
#: combined BENCH_sim.json, so records never vanish from the gate.
_CACHE = {}


def _legacy_rows():
    if "legacy" not in _CACHE:
        _CACHE["legacy"] = sweep()
    return _CACHE["legacy"]


def _legacy_records(rows):
    return [
        {
            "model": r["model"],
            "engine": "replay",
            "reference_s": r["ref_seconds"],
            "optimized_s": r["rep_seconds"],
            "speedup": r["ref_seconds"] / r["rep_seconds"],
            "nodes": r["nodes"],
            "segments": r["segments"],
            "nodes_replayed": r["replayed"],
            "peak_mem_mb": r["peak_mem_mb"],
        }
        for r in rows
    ]


@pytest.mark.slow
def test_sim_hotpath_replay_speedup(run_once):
    rows = run_once(_legacy_rows)
    table = format_table(
        ["model", "nodes", f"reference (s, {ROUNDS} rounds)",
         "replay (s)", "speed-up", "segments", "nodes replayed"],
        [
            [
                r["model"],
                r["nodes"],
                f"{r['ref_seconds']:.3f}",
                f"{r['rep_seconds']:.3f}",
                f"{r['ref_seconds'] / r['rep_seconds']:.1f}x",
                r["segments"],
                r["replayed"],
            ]
            for r in rows
        ],
        title="simulation hot path: segment replay vs. reference event "
              "loop (mesh 2x8)",
    )
    emit("sim_hotpath", table)

    for r in rows:
        # the tape compiler found the layer stacks (ResNet's giant head is
        # unique, so only its trunk replays — a third is the floor)
        assert r["segments"] >= 1, r["model"]
        assert r["replayed"] > r["nodes"] // 3, r["model"]
        # and the whole point: pricing once, replaying often is faster
        speedup = r["ref_seconds"] / r["rep_seconds"]
        assert speedup >= MIN_SPEEDUP, (r["model"], speedup)


@pytest.mark.slow
def test_sim_columnar_zoo_and_batch(run_once):
    def run():
        return large_sweep(), batch_sweep()

    zoo, batch = run_once(run)
    table = format_table(
        ["model", "nodes", f"reference (s, {ROUNDS} warm rounds)",
         "replay (s)", "columnar (s)", "columnar vs replay", "peak (MB)"],
        [
            [
                r["model"],
                r["nodes"],
                f"{r['reference_s']:.4f}",
                f"{r['replay_s']:.4f}",
                f"{r['columnar_s']:.4f}",
                f"{r['speedup_over_replay']:.1f}x",
                f"{r['peak_mem_mb']:.2f}",
            ]
            for r in zoo
        ] + [
            [
                batch["model"],
                f"{batch['plans']} plans",
                "-",
                f"{batch['sequential_replay_s']:.4f}",
                f"{batch['batch_s']:.4f}",
                f"{batch['batch_speedup']:.1f}x",
                "-",
            ]
        ],
        title="columnar simulation: warm three-tier sweep + batched "
              "what-if (mesh 2x8)",
    )
    emit("sim_columnar", table)
    emit_bench_json(
        "sim",
        _legacy_records(_legacy_rows()) + zoo + [batch],
        engine="columnar",
    )

    by_model = {r["model"]: r for r in zoo}
    # acceptance floor on the preset the columnar tier targets
    t5 = by_model["t5-96L"]
    assert t5["speedup_over_replay"] >= MIN_COLUMNAR_SPEEDUP, t5
    # every preset must at least not be slower than replay, warm
    for r in zoo:
        assert r["speedup_over_replay"] >= 1.0, (r["model"],
                                                 r["speedup_over_replay"])
    assert batch["batch_speedup"] >= MIN_BATCH_SPEEDUP, batch
