"""Simulation hot path — segment replay vs. the reference event loop.

Times `simulate_iteration` with the segment-replay fast path (the
default) against the `reference=True` event loop, on the same two models
the search hot-path benchmark stresses: a deep T5 (48 layer stacks, the
shared-subgraph best case) and a ResNet with a ~100K-class head (short
repeated trunk plus a giant unique head).  Each model simulates the plan
`derive_plan` actually selects, repeated N times — the shape of every
consumer of the simulator (fig. 8/11-13 sweeps, the Alpa comparator's
per-stage costing, pipeline composition), where the same routed plan is
priced over and over.

The replay path must be a pure accelerator: profiles and the complete
engine task logs (names, starts, durations — every bit) are asserted
identical to the reference before any timing is trusted.
"""

import time
import tracemalloc

import pytest

from repro.core import CostConfig, derive_plan
from repro.models import resnet_with_classes, t5_with_depth
from repro.viz import format_table

from common import emit, emit_bench_json, nodes_for, mesh_16w

MODELS = (
    ("t5-48L", lambda: t5_with_depth(48), None),
    ("resnet-100K", lambda: resnet_with_classes(100_000),
     CostConfig(batch_tokens=1024)),
)

#: Simulation rounds per path — the repeated-pricing pattern of the
#: figure sweeps.  The replay timing includes its cold compile (the
#: plan's tape cache is cleared first), so round 1 pays full price.
ROUNDS = 30

#: Floor on reference vs. replay wall clock.  Replay typically lands at
#: 5x-7x warm; the floor is conservative so the assertion stays robust
#: under machine load (a loaded 1-core runner measures ~3.8x on windows
#: of a few milliseconds — the regression gate tracks the real value).
MIN_SPEEDUP = 3.5


def _logs(prof):
    """Channel logs as plain tuples: (channel, task name, start, duration)."""
    out = {}
    for ch in prof.engine.channels:
        out[ch.name] = (
            [(t.name, t.start, t.duration) for t in ch.log],
            ch.free_at,
        )
    return out


def _time_rounds(routed, mesh, cfg, reference):
    """Wall-clock of ROUNDS simulations; replay re-pays its cold compile."""
    from repro.simulator import simulate_iteration

    if not reference:
        routed._sim_cache.clear()
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        simulate_iteration(routed, mesh, cfg, reference=reference)
    return time.perf_counter() - t0


def sweep():
    mesh = mesh_16w()
    rows = []
    for label, build, cfg in MODELS:
        ng = nodes_for(build())
        search = derive_plan(ng, mesh, cost_config=cfg)
        routed = search.routed
        from repro.simulator import simulate_iteration

        # -- bit-exactness first: profile and full task log, both paths --
        ref_prof = simulate_iteration(routed, mesh, cfg, reference=True)
        routed._sim_cache.clear()
        rep_prof = simulate_iteration(routed, mesh, cfg)
        assert rep_prof.as_dict() == ref_prof.as_dict(), label
        assert _logs(rep_prof) == _logs(ref_prof), label

        # best of three timing windows per path — scheduler noise only
        # ever inflates a window, so the min is the honest number
        t_ref = min(_time_rounds(routed, mesh, cfg, True) for _ in range(3))
        t_rep = min(_time_rounds(routed, mesh, cfg, False) for _ in range(3))
        if t_ref / t_rep < MIN_SPEEDUP:
            # transient load can still inflate all three windows of one
            # path (resnet's replay window is ~2 ms); one re-measure
            # separates a busy box from a real regression
            t_ref = min(t_ref,
                        *(_time_rounds(routed, mesh, cfg, True)
                          for _ in range(3)))
            t_rep = min(t_rep,
                        *(_time_rounds(routed, mesh, cfg, False)
                          for _ in range(3)))

        # peak tracked memory of one cold replay (compile + run), measured
        # outside the timing windows
        routed._sim_cache.clear()
        tracemalloc.start()
        simulate_iteration(routed, mesh, cfg)
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        rows.append(
            {
                "model": label,
                "nodes": len(routed.order),
                "ref_seconds": t_ref,
                "rep_seconds": t_rep,
                "segments": rep_prof.segments_detected,
                "replayed": rep_prof.nodes_replayed,
                "peak_mem_mb": peak / 2**20,
            }
        )
    return rows


@pytest.mark.slow
def test_sim_hotpath_replay_speedup(run_once):
    rows = run_once(sweep)
    table = format_table(
        ["model", "nodes", f"reference (s, {ROUNDS} rounds)",
         "replay (s)", "speed-up", "segments", "nodes replayed"],
        [
            [
                r["model"],
                r["nodes"],
                f"{r['ref_seconds']:.3f}",
                f"{r['rep_seconds']:.3f}",
                f"{r['ref_seconds'] / r['rep_seconds']:.1f}x",
                r["segments"],
                r["replayed"],
            ]
            for r in rows
        ],
        title="simulation hot path: segment replay vs. reference event "
              "loop (mesh 2x8)",
    )
    emit("sim_hotpath", table)
    emit_bench_json("sim", [
        {
            "model": r["model"],
            "reference_s": r["ref_seconds"],
            "optimized_s": r["rep_seconds"],
            "speedup": r["ref_seconds"] / r["rep_seconds"],
            "nodes": r["nodes"],
            "segments": r["segments"],
            "nodes_replayed": r["replayed"],
            "peak_mem_mb": r["peak_mem_mb"],
        }
        for r in rows
    ])

    for r in rows:
        # the tape compiler found the layer stacks (ResNet's giant head is
        # unique, so only its trunk replays — a third is the floor)
        assert r["segments"] >= 1, r["model"]
        assert r["replayed"] > r["nodes"] // 3, r["model"]
        # and the whole point: pricing once, replaying often is faster
        speedup = r["ref_seconds"] / r["rep_seconds"]
        assert speedup >= MIN_SPEEDUP, (r["model"], speedup)
