"""Fig. 6 — time breakdown for tensor-parallel plans on T5-large, 8w/16w.

Regenerates the profiled bars: computation vs. communication time for the
DP / MHA / FFN / Megatron plans on one node (8 workers) and two nodes
(16 workers), and checks the figure's qualitative claims:

* inter-node communication is the main bottleneck for tensor parallelism;
* going 8w -> 16w widens the comm/compute gap;
* the best plan does not shard every weight tensor (16w-FFN).
"""

from repro.baselines import dp_plan, ffn_only_plan, megatron_plan, mha_only_plan
from repro.core import DEFAULT_REGISTRY, CostConfig, route_plan
from repro.models import build_t5
from repro.simulator import simulate_iteration
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w, mesh_8w

CFG = CostConfig(batch_tokens=16 * 512)  # the paper's batch size 16


def breakdown():
    ng = nodes_for(build_t5())
    rows = []
    profiles = {}
    for label, mesh in (("8w", mesh_8w()), ("16w", mesh_16w())):
        plans = {
            "DP": dp_plan(ng),
            "MHA": mha_only_plan(ng, 8),
            "FFN": ffn_only_plan(ng, 8),
            "Megatron": megatron_plan(ng, 8),
        }
        for name, plan in plans.items():
            routed = route_plan(ng, plan, DEFAULT_REGISTRY)
            prof = simulate_iteration(routed, mesh, CFG)
            profiles[(label, name)] = prof
            d = prof.as_dict()
            rows.append(
                [
                    f"{label}-{name}",
                    f"{prof.compute_time * 1e3:.0f}",
                    f"{prof.comm_time * 1e3:.0f}",
                    f"{prof.exposed_comm_time * 1e3:.0f}",
                    f"{prof.iteration_time * 1e3:.0f}",
                    d["num_gradient_buckets"],
                    f"{d['overlap_efficiency']:.0%}",
                ]
            )
    return rows, profiles


def test_fig06_time_breakdown(run_once):
    rows, profiles = run_once(breakdown)
    emit(
        "fig06_breakdown",
        format_table(
            ["plan", "compute (ms)", "comm (ms)", "exposed comm (ms)",
             "iteration (ms)", "grad buckets", "overlap"],
            rows,
            title="Fig. 6: time breakdown, T5-large plans on 8/16 workers",
        ),
    )
    # comm/compute gap widens from 8w to 16w for every plan
    for name in ("DP", "MHA", "FFN", "Megatron"):
        r8 = profiles[("8w", name)]
        r16 = profiles[("16w", name)]
        gap8 = r8.comm_time / max(r8.compute_time, 1e-12)
        gap16 = r16.comm_time / max(r16.compute_time, 1e-12)
        assert gap16 > gap8, f"{name}: comm/compute gap must widen at 16w"
    # the bottleneck shift (§4.6): DP's gradient traffic, largely hidden
    # inside one node, becomes dominantly exposed over inter-node Ethernet
    dp8, dp16 = profiles[("8w", "DP")], profiles[("16w", "DP")]
    assert dp16.exposed_comm_time > 3 * dp8.exposed_comm_time
    assert (dp16.exposed_comm_time / dp16.comm_time
            > dp8.exposed_comm_time / dp8.comm_time)
    # the paper's winner at 16w: FFN-only beats DP, the fully sharded
    # Megatron and MHA-only on communication cost (the model TAP optimises)
    from repro.core import CostModel

    ng = nodes_for(build_t5())
    cm = CostModel(mesh_16w(), CFG)
    costs = {
        name: cm.plan_cost(route_plan(ng, plan, DEFAULT_REGISTRY))
        for name, plan in {
            "DP": dp_plan(ng),
            "MHA": mha_only_plan(ng, 8),
            "FFN": ffn_only_plan(ng, 8),
            "Megatron": megatron_plan(ng, 8),
        }.items()
    }
    assert costs["FFN"] < costs["DP"]
    assert costs["FFN"] < costs["MHA"]
    assert costs["FFN"] < costs["Megatron"]
