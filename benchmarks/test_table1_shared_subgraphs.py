"""Table 1 — shared subgraphs exist on many neural network models.

Regenerates the census: for every zoo preset, the pruner's families are
reported with their kind and multiplicity, alongside parameter counts, and
checked against the paper's expected shared-subgraph structure.
"""

from repro.core import prune_graph
from repro.models import TABLE1_PRESETS
from repro.viz import format_table

from common import emit, nodes_for


def census():
    rows = []
    for name, preset in TABLE1_PRESETS.items():
        graph = preset["build"]()
        result = prune_graph(nodes_for(graph), min_duplicate=2)
        fams = sorted(result.families, key=lambda f: -f.multiplicity)
        fam_desc = ", ".join(
            f"{f.normalized.split('/')[-1]} x{f.multiplicity}" for f in fams[:3]
        )
        rows.append(
            [
                name,
                preset["scaling"],
                f"{graph.num_parameters() / 1e6:.0f}M",
                fam_desc,
                f"{result.compression:.1f}x",
            ]
        )
    return rows


def test_table1_shared_subgraph_census(run_once):
    rows = run_once(census)
    emit(
        "table1_shared_subgraphs",
        format_table(
            ["model", "scaling", "params", "shared subgraphs (top)", "compression"],
            rows,
            title="Table 1: shared subgraphs across the model zoo",
        ),
    )
    # every model must exhibit at least one shared subgraph (the table's claim)
    assert all(row[3] for row in rows)


def test_table1_expected_multiplicities(run_once):
    """The per-model multiplicities the paper lists (e.g. BERT 24x, GPT-3
    96x, Switch 15x MoE) must appear among the discovered families."""

    def check():
        mismatches = []
        for name, preset in TABLE1_PRESETS.items():
            result = prune_graph(nodes_for(preset["build"]()), min_duplicate=2)
            found = sorted((f.multiplicity for f in result.families), reverse=True)
            for expected in preset["subgraphs"].values():
                # conv trunks fragment into per-stage families, so accept
                # any family at >= half the nominal multiplicity for convs
                ok = any(
                    m == expected or (expected <= 16 and m >= max(2, expected // 4))
                    for m in found
                )
                if not ok:
                    mismatches.append((name, expected, found))
        return mismatches

    mismatches = run_once(check)
    assert not mismatches, mismatches
