"""Fig. 10 — end-to-end search time, scaling ResNet classifier width.

The paper widens ResNet-50's classification layer (1024 up to hundreds of
thousands of classes) and reports TAP two orders of magnitude faster than
Alpa (103x–162x).  The Alpa-like comparator profiles operators at their
true widths and searches the unpruned graph, so its time grows with the
classifier; TAP prunes to the bottleneck families plus the single FC node.
"""

import pytest

from repro.baselines import alpa_like_search
from repro.core import CostConfig, derive_plan
from repro.models import resnet_with_classes
from repro.viz import format_series, format_table

from common import emit, nodes_for, mesh_16w

CLASS_COUNTS = (1024, 16384, 65536, 262144)
CFG = CostConfig(batch_tokens=1024)  # the paper trains ResNet at batch 1024


def sweep():
    mesh = mesh_16w()
    rows = []
    for classes in CLASS_COUNTS:
        model = resnet_with_classes(classes)
        ng = nodes_for(model)
        # best of three: the search is milliseconds, the flatness
        # assertion below should not ride on scheduler noise
        tap = min(
            (derive_plan(ng, mesh, cost_config=CFG) for _ in range(3)),
            key=lambda r: r.search_seconds,
        )
        # Alpa profiles every distinct operator at its real width and runs
        # repeated DP/intra passes over the unpruned graph
        alpa = alpa_like_search(
            ng, mesh, cost_config=CFG, num_candidates=16,
            stage_counts=(2, 4, 8), microbatch_counts=(2, 4, 8),
        )
        rows.append(
            {
                "classes": classes,
                "params": model.num_parameters(),
                "tap_seconds": tap.search_seconds,
                "alpa_seconds": alpa.search_seconds,
                "fc_pattern": next(
                    (v for k, v in tap.plan.as_dict.items() if k.endswith("head/fc")),
                    "replicate",
                ),
            }
        )
    return rows


@pytest.mark.slow
def test_fig10_search_time_resnet_width(run_once):
    rows = run_once(sweep)
    table = format_table(
        ["classes", "params (M)", "TAP (s)", "Alpa-like (s)", "speed-up",
         "fc decision"],
        [
            [
                r["classes"],
                f"{r['params'] / 1e6:.0f}",
                f"{r['tap_seconds']:.2f}",
                f"{r['alpa_seconds']:.2f}",
                f"{r['alpa_seconds'] / r['tap_seconds']:.1f}x",
                r["fc_pattern"],
            ]
            for r in rows
        ],
        title="Fig. 10: end-to-end search time vs. classifier width (mesh 2x8)",
    )
    series = "\n".join(
        [
            format_series("tap", [(r["classes"], round(r["tap_seconds"], 2)) for r in rows], "s"),
            format_series("alpa", [(r["classes"], round(r["alpa_seconds"], 2)) for r in rows], "s"),
        ]
    )
    emit("fig10_search_resnet", table + "\n" + series)

    # TAP's search stays flat while the classifier widens 256x
    tap_times = [r["tap_seconds"] for r in rows]
    assert max(tap_times) < 3 * min(tap_times)
    # Alpa-like slows down as the model widens (profiling + search at width)
    assert rows[-1]["alpa_seconds"] > rows[0]["alpa_seconds"]
    # TAP is faster at every width, and by a growing factor
    speedups = [r["alpa_seconds"] / r["tap_seconds"] for r in rows]
    assert all(s > 1 for s in speedups)
    assert speedups[-1] > speedups[0]
    # the wide classifier itself is sharded (the motivating §3.3 case)
    assert rows[-1]["fc_pattern"] != "replicate"
