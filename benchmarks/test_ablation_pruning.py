"""Ablation — search with and without shared-subgraph pruning.

Algorithm 1 is TAP's entire source of speed-up: disabling it makes the
search enumerate over the whole graph.  This ablation measures both modes
on the same model (the unpruned mode capped so it terminates) and shows
the pruned search is faster *and* finds an equal-or-better plan, because
the capped unpruned enumeration cannot cover the space.
"""

from repro.core import derive_plan
from repro.models import t5_with_depth
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w


def run():
    ng = nodes_for(t5_with_depth(4, hidden=512, ffn=2048))
    mesh = mesh_16w()
    pruned = derive_plan(ng, mesh)
    unpruned = derive_plan(
        ng, mesh, use_pruning=False, max_plans_per_block=2000, tp_degrees=[8]
    )
    return pruned, unpruned


def test_ablation_pruning(run_once):
    pruned, unpruned = run_once(run)
    emit(
        "ablation_pruning",
        format_table(
            ["mode", "search (s)", "candidates", "valid", "best cost (ms)"],
            [
                [
                    "pruned (Algorithm 1)",
                    f"{pruned.search_seconds:.2f}",
                    pruned.candidates_examined,
                    pruned.valid_plans,
                    f"{pruned.cost * 1e3:.2f}",
                ],
                [
                    "unpruned (capped at 2000)",
                    f"{unpruned.search_seconds:.2f}",
                    unpruned.candidates_examined,
                    unpruned.valid_plans,
                    f"{unpruned.cost * 1e3:.2f}",
                ],
            ],
            title="Ablation: shared-subgraph pruning on vs. off (T5, 4+4 layers)",
        ),
    )
    # the pruned search finds an equal-or-better plan
    assert pruned.cost <= unpruned.cost * 1.0001
    # while examining a space that covers every per-layer combination;
    # the unpruned run exhausts its cap without covering the space
    assert unpruned.candidates_examined >= 2000
    assert pruned.search_seconds < unpruned.search_seconds * 2
