"""Extension benches — the §4.8 composition passes.

The paper lists AMP, recomputation and pipeline parallelism as orthogonal
techniques TAP composes with.  These benches quantify each composition on
T5 over the paper testbed: AMP's communication/memory savings, gradient
checkpointing's memory-for-compute trade, and the hybrid pipeline+TAP
plan against pure tensor parallelism.
"""

from repro.core import (
    CostConfig,
    CostModel,
    DEFAULT_REGISTRY,
    coarsen,
    derive_plan,
    route_plan,
)
from repro.graph import trim_auxiliary
from repro.models import TransformerConfig, build_t5
from repro.passes import apply_amp, pipeline_with_tap, select_recompute_scopes
from repro.simulator import memory_per_device, simulate_iteration
from repro.viz import format_table

from common import emit, mesh_16w


def t5_medium():
    return build_t5(
        TransformerConfig(name="t5", encoder_layers=8, decoder_layers=8,
                          hidden=1024, ffn_dim=4096, num_heads=16)
    )


def run_amp():
    mesh = mesh_16w()
    trimmed, _ = trim_auxiliary(t5_medium())
    rows = []
    variants = {"fp32": trimmed, "amp(fp16)": None}
    amp_report = apply_amp(trimmed)
    variants["amp(fp16)"] = amp_report.graph
    out = {}
    for name, graph in variants.items():
        ng = coarsen(graph)
        search = derive_plan(ng, mesh)
        prof = simulate_iteration(search.routed, mesh)
        mem = memory_per_device(
            search.routed, mesh,
            extra_master_bytes=(
                amp_report.master_weight_bytes if name != "fp32" else 0
            ),
        )
        out[name] = (search, prof, mem)
        rows.append([
            name,
            f"{search.cost * 1e3:.1f}",
            f"{prof.iteration_time * 1e3:.0f}",
            f"{mem.total_gb:.2f}",
            f"{mem.activations / (1 << 30):.2f}",
        ])
    return rows, out


def test_ext_amp_composition(run_once):
    rows, out = run_once(run_amp)
    emit(
        "ext_amp",
        format_table(
            ["precision", "comm cost (ms)", "step (ms)", "memory (GB)",
             "activations (GB)"],
            rows,
            title="Extension: AMP composed with TAP (T5, 8+8 layers, 2x8)",
        ),
    )
    fp32 = out["fp32"]
    amp = out["amp(fp16)"]
    # mixed precision reduces the discovered plan's communication cost
    assert amp[0].cost < fp32[0].cost
    # and the simulated step time
    assert amp[1].iteration_time < fp32[1].iteration_time
    # activation memory shrinks even though masters are added
    assert amp[2].activations < fp32[2].activations


def run_recompute():
    mesh = mesh_16w()
    ng = coarsen(trim_auxiliary(t5_medium())[0])
    search = derive_plan(ng, mesh)
    policy = select_recompute_scopes(ng)
    base_mem = memory_per_device(search.routed, mesh)
    ckpt_mem = memory_per_device(search.routed, mesh, recompute=policy)
    base_t = simulate_iteration(search.routed, mesh)
    ckpt_t = simulate_iteration(search.routed, mesh, recompute=policy)
    return policy, base_mem, ckpt_mem, base_t, ckpt_t


def test_ext_recompute_tradeoff(run_once):
    policy, base_mem, ckpt_mem, base_t, ckpt_t = run_once(run_recompute)
    emit(
        "ext_recompute",
        format_table(
            ["mode", "activations (GB)", "total mem (GB)", "step (ms)"],
            [
                ["store all", f"{base_mem.activations / (1 << 30):.2f}",
                 f"{base_mem.total_gb:.2f}", f"{base_t.iteration_time * 1e3:.0f}"],
                ["sqrt-N checkpointing",
                 f"{ckpt_mem.activations / (1 << 30):.2f}",
                 f"{ckpt_mem.total_gb:.2f}", f"{ckpt_t.iteration_time * 1e3:.0f}"],
            ],
            title="Extension: gradient checkpointing on the TAP plan",
        ),
    )
    assert ckpt_mem.activations < 0.7 * base_mem.activations
    assert ckpt_t.compute_time > base_t.compute_time
    assert policy.recompute_flops_fraction > 0.2


def run_pipeline():
    mesh = mesh_16w()
    ng = coarsen(trim_auxiliary(t5_medium())[0])
    pure = derive_plan(ng, mesh)
    pure_t = simulate_iteration(pure.routed, mesh).iteration_time
    hybrid = pipeline_with_tap(ng, mesh, num_stages=2, microbatches=8)
    return pure, pure_t, hybrid


def test_ext_hybrid_pipeline(run_once):
    pure, pure_t, hybrid = run_once(run_pipeline)
    emit(
        "ext_pipeline",
        format_table(
            ["plan", "step (ms)", "notes"],
            [
                ["pure TAP (tensor)", f"{pure_t * 1e3:.0f}",
                 pure.plan.describe()[:60]],
                ["hybrid 2-stage pipeline + TAP",
                 f"{hybrid.iteration_time * 1e3:.0f}",
                 f"bubble {hybrid.bubble_fraction:.0%}, "
                 f"stage tp={[s.tp_degree for s in hybrid.stages]}"],
            ],
            title="Extension: TAP composed with pipeline parallelism",
        ),
    )
    assert hybrid.num_stages == 2
    # the hybrid confines gradient sync inside single-node stages, trading
    # it for the pipeline bubble; both must land in the same magnitude
    assert 0.2 * pure_t < hybrid.iteration_time < 5 * pure_t
