"""Columnar search core at scale — order-of-magnitude-larger graphs.

The large zoo presets (a 96-layer T5 stack, a ResNet with a 300K-class
head, a 48-layer MoE) push the search onto graphs where the per-candidate
Python overhead of the incremental engine dominates.  This bench times
the memoized engine against the columnar array-batched core on each,
warm (one untimed derivation, then min of several repeats — the sweep
regime the columnar compile-once design amortises), asserts bit-identical
selection, and archives ``speedup_over_engine`` plus peak tracked memory
per tier in ``BENCH_columnar.json``.
"""

import time
import tracemalloc

import pytest

from repro.core import derive_plan
from repro.models import build_preset
from repro.viz import format_table

from common import emit, emit_bench_json, nodes_for, mesh_16w

MODELS = ("t5_96l", "resnet_300k", "moe_deep")

TIERS = ("engine", "columnar")

#: Timed repeats per tier (after one untimed warm-up derivation).
REPEATS = 3

#: Floor on columnar vs. engine wall clock on the deep-stack preset the
#: columnar tier targets (t5_96l typically lands ~5-6x).  Conservative so
#: the assertion stays robust under machine load.
MIN_COLUMNAR_SPEEDUP = 3.0


def time_tier(ng, mesh, tier):
    """Warm up once, then return (best wall_s, last result)."""
    derive_plan(ng, mesh, engine=tier)
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = derive_plan(ng, mesh, engine=tier)
        best = min(best, time.perf_counter() - t0)
    return best, result


def peak_mem_mb(ng, mesh, tier):
    """Peak tracked memory of one warm derivation (outside the timing
    windows — tracemalloc slows allocation)."""
    tracemalloc.start()
    derive_plan(ng, mesh, engine=tier)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    return peak / 2**20


def sweep():
    mesh = mesh_16w()
    rows = []
    for label in MODELS:
        ng = nodes_for(build_preset(label))
        timings, results = {}, {}
        for tier in TIERS:
            timings[tier], results[tier] = time_tier(ng, mesh, tier)
        rows.append(
            {
                "model": label,
                "nodes": len(ng),
                "wall": timings,
                "results": results,
                "peak_mb": {tier: peak_mem_mb(ng, mesh, tier) for tier in TIERS},
            }
        )
    return rows


@pytest.mark.slow
def test_columnar_scale_speedup(run_once):
    rows = run_once(sweep)
    table = format_table(
        ["model", "nodes", "engine (s)", "columnar (s)", "speed-up",
         "candidates", "bound-skipped"],
        [
            [
                r["model"],
                r["nodes"],
                f"{r['wall']['engine']:.3f}",
                f"{r['wall']['columnar']:.3f}",
                f"{r['wall']['engine'] / r['wall']['columnar']:.1f}x",
                r["results"]["columnar"].candidates_examined,
                r["results"]["columnar"].bound_skipped,
            ]
            for r in rows
        ],
        title="columnar search core at scale, warm min-of-%d (mesh 2x8)"
              % REPEATS,
    )
    emit("columnar_scale", table)
    emit_bench_json("columnar", engine="columnar", records=[
        {
            "model": f"{r['model']}@{tier}",
            "engine": tier,
            "nodes": r["nodes"],
            "wall_s": r["wall"][tier],
            "candidates": r["results"][tier].candidates_examined,
            "evaluations": r["results"][tier].evaluations,
            "cache_hits": r["results"][tier].cache_hits,
            "bound_skipped": r["results"][tier].bound_skipped,
            "peak_mem_mb": r["peak_mb"][tier],
            **(
                {"speedup_over_engine":
                 r["wall"]["engine"] / r["wall"]["columnar"]}
                if tier == "columnar" else {}
            ),
        }
        for r in rows
        for tier in TIERS
    ])

    for r in rows:
        eng, col = r["results"]["engine"], r["results"]["columnar"]
        # the columnar core is a pure accelerator: identical selection
        assert col.plan.as_dict == eng.plan.as_dict, r["model"]
        assert col.plan.tp_degree == eng.plan.tp_degree, r["model"]
        assert col.cost == eng.cost, r["model"]
        assert col.candidates_examined == eng.candidates_examined, r["model"]
        assert col.bound_skipped == eng.bound_skipped, r["model"]
        # batched pricing never loses to the per-candidate loop at scale
        assert r["wall"]["columnar"] < r["wall"]["engine"], r["model"]

    # the headline: the deep-stack preset clears the speed-up floor
    t5 = next(r for r in rows if r["model"] == "t5_96l")
    speedup = t5["wall"]["engine"] / t5["wall"]["columnar"]
    assert speedup >= MIN_COLUMNAR_SPEEDUP, speedup
