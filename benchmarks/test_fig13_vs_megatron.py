"""Fig. 13 — TAP's best plan vs. the expert-engineered Megatron plan.

The paper compares memory per device and training speed on T5-large:
TAP's discovered plan is more memory-efficient than Megatron while being
only 2.3%–14.8% slower per step.

In our reproduction TAP's winner (FFN-only + vocab-split embeddings) is
*comparable* to Megatron on step time — in fact slightly faster on this
simulated fabric, since it halves the per-layer activation collectives —
and both sharded plans sit far below the data-parallel baseline on
memory.  Two deviations from the paper's exact ordering are recorded in
EXPERIMENTS.md: our simulator ranks TAP's plan a little faster (the
paper: 2.3%-14.8% slower), and our per-device accounting gives Megatron
the lower weight memory (the paper's figure shows TAP lower).
"""

from repro.baselines import dp_plan, megatron_plan
from repro.core import CostConfig, DEFAULT_REGISTRY, derive_plan, route_plan
from repro.models import build_t5
from repro.simulator import memory_per_device, simulate_iteration
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w

CFG = CostConfig(batch_tokens=16 * 512)


def compare():
    ng = nodes_for(build_t5())
    mesh = mesh_16w()
    tap = derive_plan(ng, mesh, cost_config=CFG)
    plans = {
        "TAP best": tap.routed,
        "Megatron": route_plan(ng, megatron_plan(ng, 8, shard_embedding=True),
                               DEFAULT_REGISTRY),
        "DP": route_plan(ng, dp_plan(ng), DEFAULT_REGISTRY),
    }
    out = {}
    for name, routed in plans.items():
        prof = simulate_iteration(routed, mesh, CFG)
        mem = memory_per_device(routed, mesh, CFG)
        out[name] = (prof.iteration_time, mem.total, mem)
    return out


def test_fig13_tap_vs_megatron(run_once):
    results = run_once(compare)
    rows = [
        [
            name,
            f"{t * 1e3:.0f}",
            f"{mem / (1 << 30):.2f}",
            f"{detail.weights / (1 << 30):.2f}",
            f"{detail.activations / (1 << 30):.2f}",
        ]
        for name, (t, mem, detail) in results.items()
    ]
    emit(
        "fig13_vs_megatron",
        format_table(
            ["plan", "step (ms)", "memory (GB)", "weights (GB)", "activations (GB)"],
            rows,
            title="Fig. 13: TAP best plan vs. Megatron on T5-large (2x8)",
        ),
    )
    tap_t, tap_mem, _ = results["TAP best"]
    meg_t, meg_mem, _ = results["Megatron"]
    dp_t, dp_mem, _ = results["DP"]
    # speed: TAP and Megatron are comparable — within a +/-40% band (the
    # paper reports TAP 2.3%..14.8% slower; our fabric ranks TAP's plan
    # slightly faster — deviation recorded in EXPERIMENTS.md)
    assert 0.6 * meg_t <= tap_t <= 1.4 * meg_t, (tap_t, meg_t)
    # both sharded plans use far less memory than data parallelism
    assert tap_mem < dp_mem
    assert meg_mem < dp_mem
    # and TAP's plan must actually be tensor parallel, not the DP fallback
    assert (tap_t, tap_mem) != (dp_t, dp_mem)
