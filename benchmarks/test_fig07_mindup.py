"""Fig. 7 — tuning minDuplicates for Algorithm 1.

Sweeps the threshold on T5-large and on the 152-layer 100K-class ResNet,
reporting the number of unique subgraphs found and the pruning runtime.
Checks the figure's claims: the threshold is robust (family count stable
across the useful range), and pruning is fast (sub-second here; the paper
reports <12 s for T5-large on TF graphs and <1 s for the ResNet).
"""

from repro.core import prune_graph
from repro.models import RESNET152_BLOCKS, build_t5, resnet_with_classes
from repro.viz import format_table

from common import emit, nodes_for

THRESHOLDS = (1, 2, 3, 4, 6, 8, 12)


def sweep():
    models = {
        "t5_large": nodes_for(build_t5()),
        "resnet152_100k": nodes_for(
            resnet_with_classes(100_000, blocks=RESNET152_BLOCKS)
        ),
    }
    rows = []
    series = {}
    for name, ng in models.items():
        counts = []
        for threshold in THRESHOLDS:
            result = prune_graph(ng, min_duplicate=threshold)
            counts.append(
                (threshold, len(result.families), result.runtime_seconds)
            )
        series[name] = counts
        for threshold, families, runtime in counts:
            rows.append([name, threshold, families, f"{runtime * 1e3:.1f}"])
    return rows, series


def test_fig07_min_duplicates_sweep(run_once):
    rows, series = run_once(sweep)
    emit(
        "fig07_mindup",
        format_table(
            ["model", "minDuplicates", "unique subgraphs", "pruning (ms)"],
            rows,
            title="Fig. 7: minDuplicates threshold sweep",
        ),
    )
    for name, counts in series.items():
        # threshold 1 disables pruning entirely (paper: "graph unpruned")
        assert counts[0][1] == 0
        # the useful range (2..8) is "relatively stable": the count never
        # collapses to zero and varies by at most 2x
        stable = [c for t, c, _ in counts if 2 <= t <= 8]
        assert min(stable) >= 1, (name, stable)
        assert max(stable) <= 2 * min(stable), (name, stable)
        # pruning is fast — well under the paper's 12 s budget
        assert all(r < 12.0 for _, _, r in counts)
    # ResNet-152's stage-wise bottleneck families repeat up to 35x, so a
    # mid-range threshold still finds subgraphs
    assert any(c > 0 for t, c, _ in series["resnet152_100k"] if t >= 8)
