"""Search hot path — the candidate-evaluation engine on vs. off.

Times the full Algorithm 2 derivation with the memoized incremental
engine (the default) against the reference route-everything loop, on the
two models the paper's scaling figures stress: a deep T5 (Fig. 9's
largest depth) and a ResNet with a ~100K-class head (Fig. 10's regime).
The engine must be a pure accelerator: the selected plan, its cost and
the candidate count are asserted identical to the reference path, and the
engine's work counters (node evaluations, memo hits, bound-skipped
candidates) are archived alongside the wall-clock ratio.
"""

import time
import tracemalloc

import pytest

from repro.core import CostConfig, derive_plan
from repro.models import resnet_with_classes, t5_with_depth
from repro.viz import format_table

from common import emit, emit_bench_json, nodes_for, mesh_16w

MODELS = (
    ("t5-24L", lambda: t5_with_depth(24), None),
    ("resnet-100K", lambda: resnet_with_classes(100_000),
     CostConfig(batch_tokens=1024)),
)

#: Floor on engine-on vs. engine-off wall clock.  The engine typically
#: lands far above this (10x-40x); the floor is conservative so the
#: assertion stays robust under machine load.
MIN_SPEEDUP = 3.0


def sweep():
    mesh = mesh_16w()
    rows = []
    for label, build, cfg in MODELS:
        ng = nodes_for(build())
        t0 = time.perf_counter()
        ref = derive_plan(ng, mesh, cost_config=cfg, engine=False)
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        eng = derive_plan(ng, mesh, cost_config=cfg)
        t_eng = time.perf_counter() - t0
        # peak tracked memory of one engine derivation, measured outside
        # the timing windows (tracemalloc slows allocation)
        tracemalloc.start()
        derive_plan(ng, mesh, cost_config=cfg)
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        rows.append(
            {
                "model": label,
                "ref_seconds": t_ref,
                "eng_seconds": t_eng,
                "peak_mem_mb": peak / 2**20,
                "ref": ref,
                "eng": eng,
            }
        )
    return rows


@pytest.mark.slow
def test_search_hotpath_engine_speedup(run_once):
    rows = run_once(sweep)
    table = format_table(
        ["model", "reference (s)", "engine (s)", "speed-up", "candidates",
         "node evals", "memo hits", "bound-skipped"],
        [
            [
                r["model"],
                f"{r['ref_seconds']:.2f}",
                f"{r['eng_seconds']:.2f}",
                f"{r['ref_seconds'] / r['eng_seconds']:.1f}x",
                r["eng"].candidates_examined,
                r["eng"].evaluations,
                r["eng"].cache_hits,
                r["eng"].bound_skipped,
            ]
            for r in rows
        ],
        title="search hot path: candidate-evaluation engine on vs. off "
              "(mesh 2x8)",
    )
    emit("search_hotpath", table)
    emit_bench_json("search", [
        {
            "model": r["model"],
            "reference_s": r["ref_seconds"],
            "optimized_s": r["eng_seconds"],
            "speedup": r["ref_seconds"] / r["eng_seconds"],
            "candidates": r["eng"].candidates_examined,
            "evaluations": r["eng"].evaluations,
            "cache_hits": r["eng"].cache_hits,
            "bound_skipped": r["eng"].bound_skipped,
            "peak_mem_mb": r["peak_mem_mb"],
        }
        for r in rows
    ])

    for r in rows:
        ref, eng = r["ref"], r["eng"]
        # the engine is a pure accelerator: identical selection, exactly
        assert eng.plan.as_dict == ref.plan.as_dict, r["model"]
        assert eng.plan.tp_degree == ref.plan.tp_degree, r["model"]
        assert eng.cost == ref.cost, r["model"]
        assert eng.candidates_examined == ref.candidates_examined, r["model"]
        # the counters expose where the time went
        assert eng.evaluations > 0
        assert eng.cache_hits > eng.evaluations
        assert eng.bound_skipped > 0
        # and the whole point: it is much faster
        speedup = r["ref_seconds"] / r["eng_seconds"]
        assert speedup >= MIN_SPEEDUP, (r["model"], speedup)
