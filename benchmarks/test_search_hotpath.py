"""Search hot path — the three candidate-evaluation tiers side by side.

Times the full Algorithm 2 derivation on the two models the paper's
scaling figures stress — a deep T5 (Fig. 9's largest depth) and a ResNet
with a ~100K-class head (Fig. 10's regime) — through all three engine
tiers: the reference route-everything loop, the memoized incremental
engine, and the columnar array-batched core.  Both accelerated tiers must
be pure: selected plan, cost and candidate count are asserted identical
to the reference path.

Timing is *warm*: one untimed derivation per tier populates the prune /
block / skeleton caches, then the tier is timed as the min of several
repeats.  That is the representative regime — sweeps and ablations derive
many plans over one graph — and it is what the columnar tier's
compile-once design amortises.  Every tier is measured identically.
"""

import time
import tracemalloc

import pytest

from repro.core import CostConfig, derive_plan
from repro.models import resnet_with_classes, t5_with_depth
from repro.viz import format_table

from common import emit, emit_bench_json, nodes_for, mesh_16w

MODELS = (
    ("t5-24L", lambda: t5_with_depth(24), None),
    ("resnet-100K", lambda: resnet_with_classes(100_000),
     CostConfig(batch_tokens=1024)),
)

TIERS = ("reference", "engine", "columnar")

#: Timed repeats per tier (after one untimed warm-up derivation).
REPEATS = 3

#: Floor on accelerated-tier vs. reference wall clock.  Both tiers land
#: far above this (10x-40x); the floor is conservative so the assertion
#: stays robust under machine load.
MIN_SPEEDUP = 3.0


def time_tier(ng, mesh, cfg, tier):
    """Warm up once, then return (best wall_s, last result)."""
    derive_plan(ng, mesh, cost_config=cfg, engine=tier)
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        result = derive_plan(ng, mesh, cost_config=cfg, engine=tier)
        best = min(best, time.perf_counter() - t0)
    return best, result


def peak_mem_mb(ng, mesh, cfg, tier):
    """Peak tracked memory of one warm derivation, measured outside the
    timing windows (tracemalloc slows allocation)."""
    tracemalloc.start()
    derive_plan(ng, mesh, cost_config=cfg, engine=tier)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    return peak / 2**20


def sweep():
    mesh = mesh_16w()
    rows = []
    for label, build, cfg in MODELS:
        ng = nodes_for(build())
        timings = {}
        results = {}
        for tier in TIERS:
            timings[tier], results[tier] = time_tier(ng, mesh, cfg, tier)
        rows.append(
            {
                "model": label,
                "wall": timings,
                "results": results,
                "peak_mb": {
                    tier: peak_mem_mb(ng, mesh, cfg, tier)
                    for tier in ("engine", "columnar")
                },
            }
        )
    return rows


@pytest.mark.slow
def test_search_hotpath_tier_speedups(run_once):
    rows = run_once(sweep)
    table = format_table(
        ["model", "reference (s)", "engine (s)", "columnar (s)",
         "engine x", "columnar x", "candidates"],
        [
            [
                r["model"],
                f"{r['wall']['reference']:.3f}",
                f"{r['wall']['engine']:.3f}",
                f"{r['wall']['columnar']:.3f}",
                f"{r['wall']['reference'] / r['wall']['engine']:.1f}x",
                f"{r['wall']['reference'] / r['wall']['columnar']:.1f}x",
                r["results"]["columnar"].candidates_examined,
            ]
            for r in rows
        ],
        title="search hot path: evaluation tiers, warm min-of-%d (mesh 2x8)"
              % REPEATS,
    )
    emit("search_hotpath", table)

    records = []
    for r in rows:
        ref_s = r["wall"]["reference"]
        for tier in TIERS:
            res = r["results"][tier]
            rec = {
                "model": f"{r['model']}@{tier}",
                "engine": tier,
                "wall_s": r["wall"][tier],
                "candidates": res.candidates_examined,
            }
            if tier != "reference":
                rec.update(
                    speedup=ref_s / r["wall"][tier],
                    evaluations=res.evaluations,
                    cache_hits=res.cache_hits,
                    bound_skipped=res.bound_skipped,
                    peak_mem_mb=r["peak_mb"][tier],
                )
            if tier == "columnar":
                rec["speedup_over_engine"] = (
                    r["wall"]["engine"] / r["wall"][tier]
                )
            records.append(rec)
    emit_bench_json("search", records, engine="mixed")

    for r in rows:
        ref = r["results"]["reference"]
        for tier in ("engine", "columnar"):
            res = r["results"][tier]
            # accelerated tiers are pure: identical selection, exactly
            assert res.plan.as_dict == ref.plan.as_dict, (r["model"], tier)
            assert res.plan.tp_degree == ref.plan.tp_degree, (r["model"], tier)
            assert res.cost == ref.cost, (r["model"], tier)
            assert res.candidates_examined == ref.candidates_examined, (
                r["model"], tier,
            )
            # and the whole point: they are much faster
            speedup = r["wall"]["reference"] / r["wall"][tier]
            assert speedup >= MIN_SPEEDUP, (r["model"], tier, speedup)
        # engine counters expose where the time went
        eng = r["results"]["engine"]
        assert eng.evaluations > 0
        assert eng.cache_hits > eng.evaluations
        assert eng.bound_skipped > 0
