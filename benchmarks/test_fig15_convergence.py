"""Fig. 15 — training loss of M6-MoE-100B vs. M6-MoE-1T (§6.5).

The paper trains the 100B model on 128 V100s and the 1T model on 480
V100s (10x the parameters for 3.75x the GPUs) and shows the 1T model
reaching visibly lower loss.  Per the substitution rule, the loss curves
come from a scaling-law generator (documented synthetic); the *resource
arithmetic* (parameters per GPU) and the loss ordering are the claims
reproduced.  TAP itself plans both models: expert parallelism keeps the
per-device footprint bounded.
"""

from repro.core import derive_plan
from repro.cluster import Mesh
from repro.models import build_preset
from repro.simulator import simulate_training_loss
from repro.viz import format_series, format_table, render_curves

from common import emit, nodes_for

TOKENS_PER_STEP = 1 << 20
STEPS = 200


def run():
    g100 = build_preset("m6_moe_100b")
    g1t = build_preset("m6_moe_1t")
    p100, p1t = g100.num_parameters(), g1t.num_parameters()

    curve100 = simulate_training_loss(
        "m6_moe_100b", p100, TOKENS_PER_STEP, num_steps=STEPS, seed=1
    )
    curve1t = simulate_training_loss(
        "m6_moe_1t", p1t, TOKENS_PER_STEP, num_steps=STEPS, seed=2
    )

    # TAP derives expert-parallel plans for both (the planning cost stays
    # minutes even at 10^12 parameters — the graphs are layer-repetitive)
    plan100 = derive_plan(nodes_for(g100), Mesh(16, 8), tp_degrees=[1, 8])
    plan1t = derive_plan(nodes_for(g1t), Mesh(60, 8), tp_degrees=[1, 8])

    return {
        "params": (p100, p1t),
        "gpus": (128, 480),
        "curves": (curve100, curve1t),
        "plans": (plan100, plan1t),
    }


def test_fig15_convergence(run_once):
    data = run_once(run)
    p100, p1t = data["params"]
    g100, g1t = data["gpus"]
    curve100, curve1t = data["curves"]
    plan100, plan1t = data["plans"]

    table = format_table(
        ["model", "params", "GPUs", "params/GPU", "final loss", "plan"],
        [
            [
                "M6-MoE-100B", f"{p100 / 1e9:.0f}B", g100,
                f"{p100 / g100 / 1e9:.2f}B", f"{curve100.final_loss:.3f}",
                f"tp={plan100.tp_degree}, {plan100.plan.num_sharded} sharded",
            ],
            [
                "M6-MoE-1T", f"{p1t / 1e9:.0f}B", g1t,
                f"{p1t / g1t / 1e9:.2f}B", f"{curve1t.final_loss:.3f}",
                f"tp={plan1t.tp_degree}, {plan1t.plan.num_sharded} sharded",
            ],
        ],
        title="Fig. 15 / §6.5: scaling beyond a single worker (synthetic loss)",
    )
    sample = [1, 25, 50, 100, 150, 200]
    series = "\n".join(
        format_series(
            c.name, [(s, round(c.losses[s - 1], 3)) for s in sample]
        )
        for c in (curve100, curve1t)
    )
    curves = render_curves(
        [(c.name, c.losses) for c in (curve100, curve1t)], width=60
    )
    emit("fig15_convergence", table + "\n" + series + "\n" + curves)

    # 10x the parameters on 3.75x the GPUs (resources saved per parameter)
    assert 8 < p1t / p100 < 12
    assert (p1t / g1t) > 2 * (p100 / g100)
    # the 1T model reaches lower loss over the same schedule
    assert curve1t.final_loss < curve100.final_loss
    # both curves actually train (monotone-ish decrease)
    assert curve100.losses[-1] < curve100.losses[0]
    assert curve1t.losses[-1] < curve1t.losses[0]
    # TAP sharded the expert weights in both plans
    assert plan100.plan.num_sharded > 0
    assert plan1t.plan.num_sharded > 0
