"""Fig. 12 — training time per iteration for ResNet-50 (batch size 1024).

On the width-scaled classifier, the paper reports the opposite of Fig. 11:
TAP consistently outperforms Alpa, whose plans show high variance because
the single gigantic FC layer defeats pipeline stage balancing.
"""

import statistics

from repro.baselines import alpa_like_search
from repro.core import CostConfig, derive_plan
from repro.models import resnet_with_classes
from repro.simulator import simulate_iteration
from repro.viz import format_table

from common import emit, nodes_for, mesh_16w

CLASS_COUNTS = (16384, 65536, 262144)
CFG = CostConfig(batch_tokens=1024)  # the paper's batch size 1024


def sweep():
    mesh = mesh_16w()
    rows = []
    for classes in CLASS_COUNTS:
        ng = nodes_for(resnet_with_classes(classes))
        tap = derive_plan(ng, mesh, cost_config=CFG)
        tap_iter = simulate_iteration(tap.routed, mesh, CFG).iteration_time
        alpa = alpa_like_search(
            ng, mesh, cost_config=CFG, num_candidates=12, profile=False,
        )
        times = alpa.iteration_times
        rows.append(
            {
                "classes": classes,
                "tap": tap_iter,
                "alpa_best": min(times),
                "alpa_mean": statistics.mean(times),
                "alpa_std": statistics.pstdev(times),
            }
        )
    return rows


def test_fig12_resnet_iteration_time(run_once):
    rows = run_once(sweep)
    emit(
        "fig12_resnet_iter",
        format_table(
            ["classes", "TAP (ms)", "Alpa best (ms)", "Alpa mean (ms)",
             "Alpa std (ms)"],
            [
                [
                    r["classes"],
                    f"{r['tap'] * 1e3:.0f}",
                    f"{r['alpa_best'] * 1e3:.0f}",
                    f"{r['alpa_mean'] * 1e3:.0f}",
                    f"{r['alpa_std'] * 1e3:.0f}",
                ]
                for r in rows
            ],
            title="Fig. 12: training time per iteration, ResNet-50 (batch 1024)",
        ),
    )
    for r in rows:
        # TAP consistently beats even Alpa's best pipeline candidate: the
        # wide FC layer cannot be balanced across stages
        assert r["tap"] < r["alpa_best"], r
        # and Alpa struggles to find consistently good plans (wide band)
        assert r["alpa_std"] > 0.05 * r["alpa_best"], r
