"""Ablation — block-search strategy (why the paper enumerates exhaustively).

Compares exhaustive enumeration (the paper's Algorithm 2), greedy
coordinate descent and beam search on the transformer block.  The
landscape finding: sharding decisions are *coupled* (the FFN col+row pair
only pays off jointly), so greedy stalls at data parallelism while beam-4
recovers the optimum at ~5 % of the exhaustive candidate count — and
pruning is what makes exhaustive affordable in the first place.
"""

from repro.cluster import paper_testbed
from repro.core import coarsen
from repro.core.strategies import STRATEGIES, search_block
from repro.graph import trim_auxiliary
from repro.models import build_t5
from repro.viz import format_table

from common import emit, nodes_for


def run():
    ng = nodes_for(build_t5())
    block = ng.subgraph([n.name for n in ng if "encoder/layer_0" in n.name])
    mesh = paper_testbed()
    return {
        name: search_block(block, mesh, 8, strategy=name)
        for name in STRATEGIES
    }


def test_ablation_search_strategy(run_once):
    results = run_once(run)
    emit(
        "ablation_search_strategy",
        format_table(
            ["strategy", "candidates", "valid", "best cost (ms)", "time (s)"],
            [
                [
                    name,
                    r.candidates,
                    r.valid,
                    f"{r.best_cost * 1e3:.2f}",
                    f"{r.seconds:.2f}",
                ]
                for name, r in results.items()
            ],
            title="Ablation: block-search strategy on the T5-large layer",
        ),
    )
    exhaustive = results["exhaustive"]
    # exhaustive is optimal by construction
    assert all(r.best_cost >= exhaustive.best_cost - 1e-12
               for r in results.values())
    # beam matches the optimum with a fraction of the candidates
    assert results["beam"].best_cost <= exhaustive.best_cost * 1.0001
    assert results["beam"].candidates < exhaustive.candidates / 5
    # greedy stalls: the coupled col+row decision defeats coordinate descent
    assert results["greedy"].best_cost > exhaustive.best_cost
